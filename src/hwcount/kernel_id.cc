#include "hwcount/kernel_id.h"

#include <array>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "common/logging.h"

namespace lotus::hwcount {

namespace {

constexpr const char *kJpeg = "liblotusjpeg.so.9";
constexpr const char *kImaging = "_lotusimaging.cpython-310-x86_64.so";
constexpr const char *kLibc = "libc.so.6";
constexpr const char *kTensor = "liblotustensor.so";
constexpr const char *kIo = "liblotusio.so";
constexpr const char *kRuntime = "liblotusrt.so";

/** The pristine per-kernel metadata (default symbol names). */
std::array<KernelInfo, kNumKernels>
makeTable()
{
    std::array<KernelInfo, kNumKernels> t{};
    {
        auto set = [&t](KernelId id, KernelClass cls, const char *name,
                        const char *lib) {
            t[static_cast<std::size_t>(id)] = KernelInfo{id, cls, name, lib};
        };
        set(KernelId::Invalid, KernelClass::Runtime, "<invalid>", "<none>");

        set(KernelId::DecodeMcu, KernelClass::EntropyCode, "decode_mcu",
            kJpeg);
        set(KernelId::FillBitBuffer, KernelClass::EntropyCode,
            "jpeg_fill_bit_buffer", kJpeg);
        set(KernelId::IdctBlock, KernelClass::Dct, "jpeg_idct_islow", kJpeg);
        set(KernelId::YccToRgb, KernelClass::ColorConvert, "ycc_rgb_convert",
            kJpeg);
        set(KernelId::ChromaUpsample, KernelClass::Resample, "sep_upsample",
            kJpeg);
        set(KernelId::DecompressOnepass, KernelClass::ColorConvert,
            "decompress_onepass", kJpeg);
        set(KernelId::EncodeMcu, KernelClass::EntropyCode, "encode_mcu",
            kJpeg);
        set(KernelId::ForwardDct, KernelClass::Dct, "forward_dct", kJpeg);
        set(KernelId::RgbToYcc, KernelClass::ColorConvert, "rgb_ycc_convert",
            kJpeg);
        set(KernelId::QuantizeBlock, KernelClass::Dct, "quantize_block",
            kJpeg);
        set(KernelId::DequantizeBlock, KernelClass::Dct, "dequantize_block",
            kJpeg);

        set(KernelId::UnpackRgb, KernelClass::MemoryMove, "ImagingUnpackRGB",
            kImaging);
        set(KernelId::PackRgb, KernelClass::MemoryMove, "ImagingPackRGB",
            kImaging);
        set(KernelId::ResampleHorizontal, KernelClass::Resample,
            "ImagingResampleHorizontal_8bpc", kImaging);
        set(KernelId::ResampleVertical, KernelClass::Resample,
            "ImagingResampleVertical_8bpc", kImaging);
        set(KernelId::PrecomputeCoeffs, KernelClass::Arithmetic,
            "precompute_coeffs", kImaging);
        set(KernelId::ImagingCrop, KernelClass::MemoryMove, "ImagingCrop",
            kImaging);
        set(KernelId::ImagingFlipLeftRight, KernelClass::MemoryMove,
            "ImagingFlipLeftRight", kImaging);

        set(KernelId::MemcpyBulk, KernelClass::MemoryMove,
            "__memcpy_avx_unaligned_erms", kLibc);
        set(KernelId::MemsetBulk, KernelClass::MemoryMove,
            "__memset_avx2_unaligned_erms", kLibc);
        set(KernelId::MemmoveBulk, KernelClass::MemoryMove,
            "__memmove_avx_unaligned_erms", kLibc);
        set(KernelId::HeapFree, KernelClass::Runtime, "_int_free", kLibc);
        set(KernelId::HeapCalloc, KernelClass::Runtime, "__libc_calloc",
            kLibc);

        set(KernelId::CastU8ToF32, KernelClass::Arithmetic, "cast_u8_to_f32",
            kTensor);
        set(KernelId::CastF32ToU8, KernelClass::Arithmetic, "cast_f32_to_u8",
            kTensor);
        set(KernelId::NormalizeChannels, KernelClass::Arithmetic,
            "normalize_channels", kTensor);
        set(KernelId::CollateCopy, KernelClass::MemoryMove, "collate_copy",
            kTensor);
        set(KernelId::GaussianNoiseAdd, KernelClass::Arithmetic,
            "gaussian_noise_add", kTensor);
        set(KernelId::BrightnessScale, KernelClass::Arithmetic,
            "brightness_scale", kTensor);
        set(KernelId::FlipAxisCopy, KernelClass::MemoryMove, "flip_axis_copy",
            kTensor);
        set(KernelId::CropWindowCopy, KernelClass::MemoryMove,
            "crop_window_copy", kTensor);
        set(KernelId::ForegroundSearch, KernelClass::RandomAccess,
            "foreground_search", kTensor);

        set(KernelId::FileRead, KernelClass::Io, "file_read", kIo);
        set(KernelId::FileWrite, KernelClass::Io, "file_write", kIo);

        set(KernelId::InterpEval, KernelClass::Runtime, "_PyEval_EvalFrame",
            kRuntime);
        set(KernelId::GcCollect, KernelClass::Runtime, "gc_collect_main",
            kRuntime);
        set(KernelId::PinMemoryCopy, KernelClass::MemoryMove,
            "pin_memory_copy", kRuntime);
        set(KernelId::AdamStep, KernelClass::Arithmetic, "adam_step",
            kRuntime);
        set(KernelId::LossForward, KernelClass::Arithmetic, "loss_forward",
            kRuntime);
        set(KernelId::AllreduceCopy, KernelClass::MemoryMove,
            "allreduce_copy", kRuntime);
        set(KernelId::QueueSerialize, KernelClass::MemoryMove,
            "queue_serialize", kRuntime);
        set(KernelId::QueueDeserialize, KernelClass::MemoryMove,
            "queue_deserialize", kRuntime);
    }
    return t;
}

/** The live metadata; setKernelSymbol rewrites name slots in place so
 *  attribution reports the dispatch-resolved specialization. */
std::array<KernelInfo, kNumKernels> &
table()
{
    static std::array<KernelInfo, kNumKernels> infos = makeTable();
    return infos;
}

std::mutex &
symbolMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

const KernelInfo &
kernelInfo(KernelId id)
{
    const auto idx = static_cast<std::size_t>(id);
    LOTUS_ASSERT(idx > 0 && idx < kNumKernels, "bad kernel id %zu", idx);
    return table()[idx];
}

void
setKernelSymbol(KernelId id, const char *name)
{
    const auto idx = static_cast<std::size_t>(id);
    LOTUS_ASSERT(idx > 0 && idx < kNumKernels, "bad kernel id %zu", idx);
    LOTUS_ASSERT(name != nullptr, "null kernel symbol");
    std::lock_guard lock(symbolMutex());
    table()[idx].name = name;
}

KernelId
kernelByName(const std::string &name)
{
    // Built from the pristine table: lookups by base name keep
    // resolving no matter which tier symbols are registered.
    static const std::unordered_map<std::string, KernelId> index = [] {
        std::unordered_map<std::string, KernelId> m;
        const auto pristine = makeTable();
        for (std::size_t i = 1; i < kNumKernels; ++i)
            m.emplace(pristine[i].name, pristine[i].id);
        return m;
    }();
    const auto it = index.find(name);
    if (it != index.end())
        return it->second;
    // Tier-suffixed symbols ("ycc_rgb_convert_avx2") map back to
    // their base kernel, so profiles recorded under any dispatch
    // tier stay attributable.
    for (const std::string_view suffix :
         {std::string_view{"_avx2"}, std::string_view{"_sse4"},
          std::string_view{"_scalar"}}) {
        if (name.size() > suffix.size() &&
            std::string_view{name}.substr(name.size() - suffix.size()) ==
                suffix) {
            const auto base =
                index.find(name.substr(0, name.size() - suffix.size()));
            if (base != index.end())
                return base->second;
        }
    }
    return KernelId::Invalid;
}

std::string
kernelLabel(KernelId id)
{
    const auto &info = kernelInfo(id);
    return std::string(info.name) + " (" + info.library + ")";
}

} // namespace lotus::hwcount
