/**
 * @file
 * Chrome Trace Event JSON output (the format used by chrome://tracing
 * and the PyTorch profiler, which LotusTrace piggybacks on).
 *
 * Supports complete ('X') spans, flow arrows ('s'/'f') used to draw
 * the preprocessed -> consumed data-flow edges, instant events, and
 * process/thread name metadata. Lotus events carry negative synthetic
 * ids so they never collide with a framework profiler's positive ids
 * (paper §III-C).
 */

#ifndef LOTUS_TRACE_CHROME_TRACE_H
#define LOTUS_TRACE_CHROME_TRACE_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace lotus::trace {

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &text);

struct ChromeEvent
{
    std::string name;
    std::string category;
    /** 'X' complete, 's' flow start, 'f' flow finish, 'i' instant,
     *  'M' metadata. */
    char phase = 'X';
    /** Microseconds (Chrome Trace convention). */
    double ts_us = 0.0;
    double dur_us = 0.0;
    std::int64_t pid = 0;
    std::int64_t tid = 0;
    /** Event/flow id; Lotus uses negative synthetic ids. */
    std::int64_t id = 0;
    bool has_id = false;
    std::vector<std::pair<std::string, std::string>> args;

    std::string toJson() const;
};

class ChromeTraceBuilder
{
  public:
    /** Allocate the next negative synthetic id. */
    std::int64_t nextSyntheticId() { return next_synthetic_id_--; }

    /** Add a complete span. */
    void addComplete(const std::string &name, const std::string &category,
                     TimeNs start, TimeNs duration, std::int64_t pid,
                     std::int64_t tid);

    /** Add a flow arrow from one point to another. Returns flow id. */
    std::int64_t addFlow(const std::string &name, TimeNs from_time,
                         std::int64_t from_pid, std::int64_t from_tid,
                         TimeNs to_time, std::int64_t to_pid,
                         std::int64_t to_tid);

    /** Add an instant event. */
    void addInstant(const std::string &name, TimeNs time, std::int64_t pid,
                    std::int64_t tid);

    /** Name a process lane. */
    void setProcessName(std::int64_t pid, const std::string &name);

    /** Name a thread lane. */
    void setThreadName(std::int64_t pid, std::int64_t tid,
                       const std::string &name);

    /** Attach an argument to the most recently added event. */
    void addArgToLast(const std::string &key, const std::string &value);

    /** Append an event from another source (e.g. a framework
     *  profiler's trace being augmented). */
    void addRaw(ChromeEvent event);

    const std::vector<ChromeEvent> &events() const { return events_; }

    /** Render the complete JSON document. */
    std::string toJson() const;

    /** Render and write to @p path; returns bytes written. */
    std::uint64_t writeTo(const std::string &path) const;

  private:
    std::vector<ChromeEvent> events_;
    std::int64_t next_synthetic_id_ = -1;
};

} // namespace lotus::trace

#endif // LOTUS_TRACE_CHROME_TRACE_H
