/**
 * @file
 * Reader for Chrome Trace Event JSON documents.
 *
 * LotusTrace can augment an existing framework-profiler trace
 * (paper §III-C): this parser loads such a document's traceEvents —
 * either the object form {"traceEvents": [...]} or the bare array
 * form — into ChromeEvents that ChromeTraceBuilder::addRaw can carry
 * forward unchanged next to Lotus's negative-id events.
 *
 * Scope: the subset of JSON the trace format uses (objects, arrays,
 * strings with escapes, numbers, booleans, null). Unknown keys are
 * preserved only insofar as they map onto ChromeEvent fields; args
 * values are stringified.
 */

#ifndef LOTUS_TRACE_CHROME_READER_H
#define LOTUS_TRACE_CHROME_READER_H

#include <string>
#include <vector>

#include "trace/chrome_trace.h"

namespace lotus::trace {

/**
 * Parse a Chrome trace JSON document. Fatal on malformed JSON;
 * events missing a phase default to 'X'.
 */
std::vector<ChromeEvent> parseChromeTrace(const std::string &json);

/** Parse a Chrome trace file from disk. */
std::vector<ChromeEvent> readChromeTraceFile(const std::string &path);

namespace detail {

/** Minimal JSON value used by the trace reader. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *find(const std::string &key) const;
    std::string asString() const;
};

/** Parse one JSON document. Fatal on malformed input. */
JsonValue parseJson(const std::string &text);

} // namespace detail

} // namespace lotus::trace

#endif // LOTUS_TRACE_CHROME_READER_H
