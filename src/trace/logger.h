/**
 * @file
 * The LotusTrace record sink.
 *
 * Logging is two clock reads plus one buffered append per event — the
 * instrumentation does no other computation and keeps no other tracer
 * state, which is how the paper achieves ~0% wall-time overhead
 * (§III-B, §VI-B). Buffers are per-thread; merging happens only when
 * records are read back or flushed to a file.
 */

#ifndef LOTUS_TRACE_LOGGER_H
#define LOTUS_TRACE_LOGGER_H

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "trace/record.h"

namespace lotus::trace {

class TraceLogger
{
  public:
    explicit TraceLogger(const Clock *clock = &SteadyClock::instance());

    TraceLogger(const TraceLogger &) = delete;
    TraceLogger &operator=(const TraceLogger &) = delete;

    /** Timestamp from the logger's clock. */
    TimeNs now() const { return clock_->now(); }

    /** Append one record (cheap; per-thread buffered). */
    void log(TraceRecord record);

    /**
     * Synchronous per-record callback, invoked on the logging thread
     * before buffering. This is the hook point baseline profilers
     * attach to (their per-event tracing cost is charged to the
     * thread that produced the event, like sys.settrace would be).
     * Must be set before any logging happens: changing the observer
     * mid-run would race with logging threads, so doing so is fatal
     * (reset() re-arms a logger for a fresh observer).
     */
    using Observer = std::function<void(const TraceRecord &)>;
    void setObserver(Observer observer);

    /**
     * When false, records are handed to the observer but not kept
     * (a baseline profiler's run does not keep LotusTrace data).
     */
    void setStoreRecords(bool store) { store_records_ = store; }

    /** Merged records, sorted by start time. */
    std::vector<TraceRecord> records() const;

    /** Total records logged so far. */
    std::uint64_t recordCount() const;

    /** Write the merged log to @p path; returns bytes written. */
    std::uint64_t writeTo(const std::string &path) const;

    /** Load records from a log file. */
    static std::vector<TraceRecord> readFrom(const std::string &path);

    /** Discard all records. */
    void reset();

  private:
    struct ThreadBuffer
    {
        std::mutex mutex;
        std::vector<TraceRecord> records;
    };

    ThreadBuffer &threadBuffer();

    const Clock *clock_;
    /** Unique instance id: the per-thread buffer cache keys on it so
     *  a new logger reusing a destroyed logger's address never sees
     *  stale buffers. */
    const std::uint64_t instance_id_;
    Observer observer_;
    /** Set by the first log(); read-mostly so the hot-path check does
     *  not ping-pong a cache line between logging threads. */
    std::atomic<bool> logging_started_{false};
    bool store_records_ = true;
    mutable std::mutex buffers_mutex_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
};

/**
 * Convenience span capture: remembers start time at construction and
 * logs the record with the measured duration at finish().
 */
class SpanTimer
{
  public:
    SpanTimer(TraceLogger *logger, RecordKind kind)
        : logger_(logger), start_(logger ? logger->now() : 0)
    {
        record_.kind = kind;
        record_.start = start_;
    }

    /** Mutable record fields (batch_id, pid, op_name, ...). */
    TraceRecord &record() { return record_; }

    /** Log the span ending now. No-op without a logger. */
    void
    finish()
    {
        if (!logger_)
            return;
        record_.duration = logger_->now() - start_;
        logger_->log(record_);
    }

  private:
    TraceLogger *logger_;
    TimeNs start_;
    TraceRecord record_;
};

} // namespace lotus::trace

#endif // LOTUS_TRACE_LOGGER_H
