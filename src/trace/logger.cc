#include "trace/logger.h"

#include <algorithm>
#include <atomic>

#include "common/files.h"
#include "common/logging.h"

namespace lotus::trace {

namespace {
std::atomic<std::uint64_t> next_logger_id{1};
} // namespace

TraceLogger::TraceLogger(const Clock *clock)
    : clock_(clock), instance_id_(next_logger_id.fetch_add(1))
{
}

TraceLogger::ThreadBuffer &
TraceLogger::threadBuffer()
{
    thread_local std::vector<
        std::pair<std::uint64_t, std::shared_ptr<ThreadBuffer>>>
        cache;
    for (const auto &[owner, buffer] : cache) {
        if (owner == instance_id_)
            return *buffer;
    }
    auto buffer = std::make_shared<ThreadBuffer>();
    {
        std::lock_guard lock(buffers_mutex_);
        buffers_.push_back(buffer);
    }
    cache.emplace_back(instance_id_, buffer);
    return *buffer;
}

void
TraceLogger::setObserver(Observer observer)
{
    if (logging_started_.load(std::memory_order_acquire))
        LOTUS_FATAL("TraceLogger::setObserver called after logging "
                    "started (%llu records in); set the observer before "
                    "any log() call, or reset() the logger first",
                    static_cast<unsigned long long>(recordCount()));
    observer_ = std::move(observer);
}

void
TraceLogger::log(TraceRecord record)
{
    if (!logging_started_.load(std::memory_order_relaxed))
        logging_started_.store(true, std::memory_order_release);
    if (observer_)
        observer_(record);
    if (!store_records_)
        return;
    auto &buffer = threadBuffer();
    std::lock_guard lock(buffer.mutex);
    buffer.records.push_back(std::move(record));
}

std::vector<TraceRecord>
TraceLogger::records() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard lock(buffers_mutex_);
        buffers = buffers_;
    }
    std::vector<TraceRecord> merged;
    for (const auto &buffer : buffers) {
        std::lock_guard lock(buffer->mutex);
        merged.insert(merged.end(), buffer->records.begin(),
                      buffer->records.end());
    }
    std::sort(merged.begin(), merged.end(),
              [](const TraceRecord &a, const TraceRecord &b) {
                  return a.start < b.start;
              });
    return merged;
}

std::uint64_t
TraceLogger::recordCount() const
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard lock(buffers_mutex_);
        buffers = buffers_;
    }
    std::uint64_t count = 0;
    for (const auto &buffer : buffers) {
        std::lock_guard lock(buffer->mutex);
        count += buffer->records.size();
    }
    return count;
}

std::uint64_t
TraceLogger::writeTo(const std::string &path) const
{
    const std::string text = recordsToText(records());
    writeFile(path, text);
    return text.size();
}

std::vector<TraceRecord>
TraceLogger::readFrom(const std::string &path)
{
    return recordsFromText(readFile(path));
}

void
TraceLogger::reset()
{
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    {
        std::lock_guard lock(buffers_mutex_);
        buffers = buffers_;
    }
    for (const auto &buffer : buffers) {
        std::lock_guard lock(buffer->mutex);
        buffer->records.clear();
    }
    logging_started_.store(false, std::memory_order_release);
}

} // namespace lotus::trace
