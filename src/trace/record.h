/**
 * @file
 * LotusTrace log records.
 *
 * LotusTrace captures exactly three timing families (paper §III):
 *  [T1] BatchPreprocessed — fetch() time per batch in a worker
 *  [T2] BatchWait         — main-process wait per batch (1 µs sentinel
 *                           for batches that arrived out of order)
 *  [T3] TransformOp       — per-operation elapsed time per sample
 * plus BatchConsumed (the main process handling a ready batch) and
 * GpuCompute (accelerator service spans) to complete the data-flow
 * picture used by the visualizer.
 */

#ifndef LOTUS_TRACE_RECORD_H
#define LOTUS_TRACE_RECORD_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace lotus::trace {

enum class RecordKind : std::uint8_t
{
    BatchPreprocessed, ///< [T1] worker-side fetch of one batch
    BatchWait,         ///< [T2] main-process wait for one batch
    BatchConsumed,     ///< main-process consumption of one batch
    TransformOp,       ///< [T3] one preprocessing op on one sample
    GpuCompute,        ///< accelerator service of one batch
    EpochBoundary,     ///< epoch start/end marker
    ErrorEvent,        ///< recoverable sample error (op "error:<stage>")
    TaskSpan,          ///< one per-sample fetch task (work-stealing)
    StealEvent,        ///< task stolen from a peer (op "steal<-wN")
    CacheEvent,        ///< decoded-sample cache action (op "cache:<what>")
    IoEvent,           ///< one traced store read (op "io:<bytes>")
};

const char *recordKindName(RecordKind kind);

/** The paper marks out-of-order consumed batches with a 1 µs wait. */
constexpr TimeNs kOutOfOrderSentinel = 1 * kMicrosecond;

struct TraceRecord
{
    RecordKind kind = RecordKind::BatchPreprocessed;
    /** Batch id, or -1 when not applicable. */
    std::int64_t batch_id = -1;
    /** Process-like id (main process, worker, or GPU id). */
    std::uint32_t pid = 0;
    TimeNs start = 0;
    TimeNs duration = 0;
    /** Transform name for TransformOp records, else empty. */
    std::string op_name;
    /** Sample index within the batch for TransformOp records. */
    std::int64_t sample_index = -1;

    TimeNs end() const { return start + duration; }

    /** Serialize to one log line (stable, parseable). */
    std::string toLine() const;

    /** Parse a line produced by toLine(). Fatal on malformed input. */
    static TraceRecord fromLine(const std::string &line);
};

/** Render records to a log-file body. */
std::string recordsToText(const std::vector<TraceRecord> &records);

/** Parse a log-file body. */
std::vector<TraceRecord> recordsFromText(const std::string &text);

} // namespace lotus::trace

#endif // LOTUS_TRACE_RECORD_H
