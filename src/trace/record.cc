#include "trace/record.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace lotus::trace {

const char *
recordKindName(RecordKind kind)
{
    switch (kind) {
      case RecordKind::BatchPreprocessed: return "SBatchPreprocessed";
      case RecordKind::BatchWait: return "SBatchWait";
      case RecordKind::BatchConsumed: return "SBatchConsumed";
      case RecordKind::TransformOp: return "STransformOp";
      case RecordKind::GpuCompute: return "SGpuCompute";
      case RecordKind::EpochBoundary: return "SEpoch";
      case RecordKind::ErrorEvent: return "SError";
      case RecordKind::TaskSpan: return "STask";
      case RecordKind::StealEvent: return "SSteal";
      case RecordKind::CacheEvent: return "SCache";
      case RecordKind::IoEvent: return "SIo";
    }
    LOTUS_PANIC("bad record kind %d", static_cast<int>(kind));
}

namespace {

RecordKind
kindFromName(const std::string &name)
{
    static const std::pair<const char *, RecordKind> kinds[] = {
        {"SBatchPreprocessed", RecordKind::BatchPreprocessed},
        {"SBatchWait", RecordKind::BatchWait},
        {"SBatchConsumed", RecordKind::BatchConsumed},
        {"STransformOp", RecordKind::TransformOp},
        {"SGpuCompute", RecordKind::GpuCompute},
        {"SEpoch", RecordKind::EpochBoundary},
        {"SError", RecordKind::ErrorEvent},
        {"STask", RecordKind::TaskSpan},
        {"SSteal", RecordKind::StealEvent},
        {"SCache", RecordKind::CacheEvent},
        {"SIo", RecordKind::IoEvent},
    };
    for (const auto &[text, kind] : kinds) {
        if (name == text)
            return kind;
    }
    LOTUS_FATAL("unknown record kind '%s'", name.c_str());
}

} // namespace

std::string
TraceRecord::toLine() const
{
    // op names never contain commas; everything else is numeric.
    return strFormat("%s,%lld,%u,%lld,%lld,%s,%lld",
                     recordKindName(kind),
                     static_cast<long long>(batch_id), pid,
                     static_cast<long long>(start),
                     static_cast<long long>(duration), op_name.c_str(),
                     static_cast<long long>(sample_index));
}

TraceRecord
TraceRecord::fromLine(const std::string &line)
{
    const auto fields = strSplit(line, ',');
    if (fields.size() < 5)
        LOTUS_FATAL("malformed trace line '%s'", line.c_str());
    TraceRecord record;
    record.kind = kindFromName(fields[0]);
    record.batch_id = std::strtoll(fields[1].c_str(), nullptr, 10);
    record.pid =
        static_cast<std::uint32_t>(std::strtoul(fields[2].c_str(), nullptr, 10));
    record.start = std::strtoll(fields[3].c_str(), nullptr, 10);
    record.duration = std::strtoll(fields[4].c_str(), nullptr, 10);
    if (fields.size() > 5)
        record.op_name = fields[5];
    if (fields.size() > 6)
        record.sample_index = std::strtoll(fields[6].c_str(), nullptr, 10);
    return record;
}

std::string
recordsToText(const std::vector<TraceRecord> &records)
{
    std::string out;
    for (const auto &record : records) {
        out += record.toLine();
        out += '\n';
    }
    return out;
}

std::vector<TraceRecord>
recordsFromText(const std::string &text)
{
    std::vector<TraceRecord> records;
    for (const auto &line : strSplit(text, '\n')) {
        if (!line.empty())
            records.push_back(TraceRecord::fromLine(line));
    }
    return records;
}

} // namespace lotus::trace
