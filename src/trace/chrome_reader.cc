#include "trace/chrome_reader.h"

#include <cctype>
#include <cmath>

#include "common/files.h"
#include "common/logging.h"
#include "common/strings.h"

namespace lotus::trace {

namespace detail {

namespace {

/** Recursive-descent JSON parser over a string view. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipWhitespace();
        LOTUS_ASSERT(pos_ == text_.size(),
                     "trailing garbage at offset %zu in trace JSON", pos_);
        return value;
    }

  private:
    void
    skipWhitespace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    char
    peek()
    {
        skipWhitespace();
        LOTUS_ASSERT(pos_ < text_.size(), "unexpected end of trace JSON");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        LOTUS_ASSERT(peek() == c,
                     "expected '%c' at offset %zu in trace JSON", c, pos_);
        ++pos_;
    }

    bool
    consumeIf(char c)
    {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    parseValue()
    {
        switch (peek()) {
          case '{': return parseObject();
          case '[': return parseArray();
          case '"': {
            JsonValue value;
            value.kind = JsonValue::Kind::String;
            value.string = parseString();
            return value;
          }
          case 't':
          case 'f': return parseKeyword();
          case 'n': return parseKeyword();
          default: return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        if (consumeIf('}'))
            return value;
        for (;;) {
            std::string key = parseString();
            expect(':');
            value.object.emplace_back(std::move(key), parseValue());
            if (consumeIf('}'))
                return value;
            expect(',');
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue value;
        value.kind = JsonValue::Kind::Array;
        if (consumeIf(']'))
            return value;
        for (;;) {
            value.array.push_back(parseValue());
            if (consumeIf(']'))
                return value;
            expect(',');
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            LOTUS_ASSERT(pos_ < text_.size(), "truncated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                LOTUS_ASSERT(pos_ + 4 <= text_.size(), "truncated \\u");
                const unsigned code = static_cast<unsigned>(
                    std::stoul(text_.substr(pos_, 4), nullptr, 16));
                pos_ += 4;
                // Minimal UTF-8 encode (trace names are ASCII-mostly).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default:
                LOTUS_FATAL("bad escape '\\%c' in trace JSON", esc);
            }
        }
        LOTUS_FATAL("unterminated string in trace JSON");
    }

    JsonValue
    parseKeyword()
    {
        JsonValue value;
        auto matches = [&](const char *word) {
            const std::size_t len = std::string(word).size();
            if (text_.compare(pos_, len, word) == 0) {
                pos_ += len;
                return true;
            }
            return false;
        };
        skipWhitespace();
        if (matches("true")) {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = true;
        } else if (matches("false")) {
            value.kind = JsonValue::Kind::Bool;
            value.boolean = false;
        } else if (matches("null")) {
            value.kind = JsonValue::Kind::Null;
        } else {
            LOTUS_FATAL("bad keyword at offset %zu in trace JSON", pos_);
        }
        return value;
    }

    JsonValue
    parseNumber()
    {
        skipWhitespace();
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        LOTUS_ASSERT(pos_ > start, "expected number at offset %zu", start);
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        value.number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                                   nullptr);
        return value;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
JsonValue::asString() const
{
    switch (kind) {
      case Kind::String: return string;
      case Kind::Number: {
        if (number == std::floor(number) && std::abs(number) < 1e15) {
            return strFormat("%lld",
                             static_cast<long long>(std::llround(number)));
        }
        return strFormat("%g", number);
      }
      case Kind::Bool: return boolean ? "true" : "false";
      case Kind::Null: return "null";
      default: return "<composite>";
    }
}

JsonValue
parseJson(const std::string &text)
{
    Parser parser(text);
    return parser.parse();
}

} // namespace detail

namespace {

ChromeEvent
eventFromJson(const detail::JsonValue &value)
{
    ChromeEvent event;
    if (const auto *name = value.find("name"))
        event.name = name->asString();
    if (const auto *cat = value.find("cat"))
        event.category = cat->asString();
    if (const auto *ph = value.find("ph");
        ph && !ph->string.empty())
        event.phase = ph->string[0];
    if (const auto *ts = value.find("ts"))
        event.ts_us = ts->number;
    if (const auto *dur = value.find("dur"))
        event.dur_us = dur->number;
    if (const auto *pid = value.find("pid"))
        event.pid = static_cast<std::int64_t>(pid->number);
    if (const auto *tid = value.find("tid"))
        event.tid = static_cast<std::int64_t>(tid->number);
    if (const auto *id = value.find("id")) {
        event.id = static_cast<std::int64_t>(id->number);
        event.has_id = true;
    }
    if (const auto *args = value.find("args");
        args && args->kind == detail::JsonValue::Kind::Object) {
        for (const auto &[key, arg] : args->object)
            event.args.emplace_back(key, arg.asString());
    }
    return event;
}

} // namespace

std::vector<ChromeEvent>
parseChromeTrace(const std::string &json)
{
    const auto document = detail::parseJson(json);
    const detail::JsonValue *events = nullptr;
    if (document.kind == detail::JsonValue::Kind::Array) {
        events = &document;
    } else if (document.kind == detail::JsonValue::Kind::Object) {
        events = document.find("traceEvents");
        LOTUS_ASSERT(events != nullptr,
                     "trace JSON object lacks traceEvents");
    } else {
        LOTUS_FATAL("trace JSON is neither an object nor an array");
    }
    LOTUS_ASSERT(events->kind == detail::JsonValue::Kind::Array,
                 "traceEvents is not an array");
    std::vector<ChromeEvent> out;
    out.reserve(events->array.size());
    for (const auto &value : events->array)
        out.push_back(eventFromJson(value));
    return out;
}

std::vector<ChromeEvent>
readChromeTraceFile(const std::string &path)
{
    return parseChromeTrace(readFile(path));
}

} // namespace lotus::trace
