#include "trace/chrome_trace.h"

#include "common/files.h"
#include "common/logging.h"
#include "common/strings.h"

namespace lotus::trace {

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += strFormat("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

std::string
ChromeEvent::toJson() const
{
    std::string out = "{";
    out += strFormat("\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\"",
                     jsonEscape(name).c_str(),
                     jsonEscape(category.empty() ? "lotus" : category).c_str(),
                     phase);
    out += strFormat(",\"ts\":%.3f", ts_us);
    if (phase == 'X')
        out += strFormat(",\"dur\":%.3f", dur_us);
    out += strFormat(",\"pid\":%lld,\"tid\":%lld",
                     static_cast<long long>(pid),
                     static_cast<long long>(tid));
    if (has_id)
        out += strFormat(",\"id\":%lld", static_cast<long long>(id));
    if (phase == 'f')
        out += ",\"bp\":\"e\"";
    if (!args.empty()) {
        out += ",\"args\":{";
        for (std::size_t i = 0; i < args.size(); ++i) {
            if (i > 0)
                out += ",";
            out += strFormat("\"%s\":\"%s\"",
                             jsonEscape(args[i].first).c_str(),
                             jsonEscape(args[i].second).c_str());
        }
        out += "}";
    }
    out += "}";
    return out;
}

void
ChromeTraceBuilder::addComplete(const std::string &name,
                                const std::string &category, TimeNs start,
                                TimeNs duration, std::int64_t pid,
                                std::int64_t tid)
{
    ChromeEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'X';
    event.ts_us = toUs(start);
    event.dur_us = toUs(duration);
    event.pid = pid;
    event.tid = tid;
    event.id = nextSyntheticId();
    event.has_id = true;
    events_.push_back(std::move(event));
}

std::int64_t
ChromeTraceBuilder::addFlow(const std::string &name, TimeNs from_time,
                            std::int64_t from_pid, std::int64_t from_tid,
                            TimeNs to_time, std::int64_t to_pid,
                            std::int64_t to_tid)
{
    const std::int64_t flow_id = nextSyntheticId();
    ChromeEvent start;
    start.name = name;
    start.phase = 's';
    start.ts_us = toUs(from_time);
    start.pid = from_pid;
    start.tid = from_tid;
    start.id = flow_id;
    start.has_id = true;
    events_.push_back(std::move(start));

    ChromeEvent finish;
    finish.name = name;
    finish.phase = 'f';
    finish.ts_us = toUs(to_time);
    finish.pid = to_pid;
    finish.tid = to_tid;
    finish.id = flow_id;
    finish.has_id = true;
    events_.push_back(std::move(finish));
    return flow_id;
}

void
ChromeTraceBuilder::addInstant(const std::string &name, TimeNs time,
                               std::int64_t pid, std::int64_t tid)
{
    ChromeEvent event;
    event.name = name;
    event.phase = 'i';
    event.ts_us = toUs(time);
    event.pid = pid;
    event.tid = tid;
    events_.push_back(std::move(event));
}

void
ChromeTraceBuilder::setProcessName(std::int64_t pid, const std::string &name)
{
    ChromeEvent event;
    event.name = "process_name";
    event.phase = 'M';
    event.pid = pid;
    event.args.emplace_back("name", name);
    events_.push_back(std::move(event));
}

void
ChromeTraceBuilder::setThreadName(std::int64_t pid, std::int64_t tid,
                                  const std::string &name)
{
    ChromeEvent event;
    event.name = "thread_name";
    event.phase = 'M';
    event.pid = pid;
    event.tid = tid;
    event.args.emplace_back("name", name);
    events_.push_back(std::move(event));
}

void
ChromeTraceBuilder::addArgToLast(const std::string &key,
                                 const std::string &value)
{
    LOTUS_ASSERT(!events_.empty(), "no event to attach an arg to");
    events_.back().args.emplace_back(key, value);
}

void
ChromeTraceBuilder::addRaw(ChromeEvent event)
{
    events_.push_back(std::move(event));
}

std::string
ChromeTraceBuilder::toJson() const
{
    std::string out = "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        if (i > 0)
            out += ",\n";
        out += events_[i].toJson();
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

std::uint64_t
ChromeTraceBuilder::writeTo(const std::string &path) const
{
    const std::string json = toJson();
    writeFile(path, json);
    return json.size();
}

} // namespace lotus::trace
