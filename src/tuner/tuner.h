/**
 * @file
 * Self-driving pipeline tuner (the Plumber direction, PAPERS.md
 * arXiv:2111.04131): close the loop from the telemetry Lotus already
 * emits back to the DataLoader knobs a human used to pick by reading
 * lotus_top.
 *
 * The controller consumes per-interval metrics::Snapshot diffs —
 * typically one interval per epoch — and fits the simplest bottleneck
 * model that the paper's instrumentation supports:
 *
 *  - [T2] wait time (`lotus_loader_wait_ns_total`) splits the
 *    interval into pipeline-bound time (the main process blocked on
 *    the data queue) and consumer-bound time (everything else).
 *  - [T1] fetch spans (`lotus_loader_fetch_ns{worker=*}` sums) give
 *    the fleet's preprocessing demand in worker-seconds.
 *  - `lotus_store_read_ns` isolates store I/O inside that demand, and
 *    `lotus_readahead_hits/misses` tell whether an enabled read-ahead
 *    window is actually hiding it.
 *  - [T3] `lotus_pipeline_op_ns{op="Collate"}` isolates collate.
 *  - The [T2] out-of-order sentinel ratio
 *    (`lotus_loader_ooo_batches_total / lotus_loader_batches_total`)
 *    flags straggler skew that work-stealing absorbs (DESIGN.md §10).
 *
 * Decisions are expressed as dataflow::LoaderReconfig — the
 * content-neutral knob subset — and applied by the owner at epoch
 * boundaries via DataLoader::reconfigure(). Every knob the tuner
 * touches leaves batch bytes bit-identical, so an online tuning run
 * trains on exactly the data a fixed config would have produced.
 */

#ifndef LOTUS_TUNER_TUNER_H
#define LOTUS_TUNER_TUNER_H

#include <string>

#include "dataflow/data_loader.h"
#include "metrics/snapshot.h"

namespace lotus::tuner {

/** Decisions emitted so far (one per onEpochEnd/decide). */
inline constexpr const char *kTunerDecisionsMetric =
    "lotus_tuner_decisions_total";
/** Decisions that changed at least one knob. */
inline constexpr const char *kTunerChangesMetric =
    "lotus_tuner_changes_total";
/** Last bottleneck verdict as int(Bottleneck). */
inline constexpr const char *kTunerBottleneckMetric =
    "lotus_tuner_bottleneck";
/** Last decided config, one gauge per knob. */
inline constexpr const char *kTunerWorkersMetric =
    "lotus_tuner_num_workers";
inline constexpr const char *kTunerPrefetchMetric =
    "lotus_tuner_prefetch_factor";
/** 0 = round-robin, 1 = work-stealing. */
inline constexpr const char *kTunerScheduleMetric =
    "lotus_tuner_schedule";
inline constexpr const char *kTunerReadAheadDepthMetric =
    "lotus_tuner_read_ahead_depth";

/** The binding resource for one interval. Gauge values are the enum
 *  ints; keep them stable (lotus_top decodes them). */
enum class Bottleneck : int
{
    /** No traffic in the interval (or no signals yet). */
    kUnknown = 0,
    /** Workers saturated on decode/transform CPU. */
    kDecodeCpu = 1,
    /** Store round trips on the critical path. */
    kStoreIo = 2,
    /** Collate dominates the per-op time. */
    kCollate = 3,
    /** The consumer is slower than the pipeline. */
    kConsumer = 4,
};

const char *bottleneckName(Bottleneck bottleneck);

struct TunerOptions
{
    int min_workers = 1;
    /** Ceiling for the worker demand model; callers usually set the
     *  host's core budget. */
    int max_workers = 8;
    int min_prefetch = 2;
    int max_prefetch = 4;
    int max_read_ahead_depth = 64;
    /** I/O threads paired with any read-ahead depth the tuner sets. */
    int read_ahead_io_threads = 2;
    /** Below this wait fraction the consumer binds: the main process
     *  almost never blocks on the data queue. */
    double consumer_wait_threshold = 0.05;
    /** Store I/O share of fetch busy time above which the store is a
     *  candidate bottleneck. */
    double store_io_threshold = 0.40;
    /** Collate share of fetch busy time above which collate binds. */
    double collate_threshold = 0.30;
    /** [T2] sentinel ratio above which round-robin flips to
     *  work-stealing (the PR-5 follow-up). */
    double sentinel_flip_threshold = 0.25;
    /** Read-ahead miss ratio above which an enabled window is judged
     *  too shallow (the PR-8 follow-up: adaptive depth). */
    double readahead_miss_threshold = 0.10;
    /** Fraction of the I/O threads' combined wall time spent inside
     *  store reads above which an enabled window is judged too shallow
     *  even with few misses: claims then block on in-flight entries
     *  (hits-after-wait), so the miss ratio stays low while the I/O
     *  path saturates. Deepening widens the coalesced range GETs and
     *  cuts round trips. */
    double readahead_io_util_threshold = 0.50;
    /** Little's-law safety factor on the read-ahead depth. */
    double readahead_headroom = 2.0;
    /** Gate on the round-robin -> work-stealing flip (off keeps the
     *  paper-faithful schedule for characterization runs). */
    bool allow_schedule_flip = true;
};

/**
 * One interval's model inputs, extracted from a Snapshot diff (or a
 * trace replay — see tuner/replay.h). Times in seconds, events in
 * counts; everything is a delta over the interval.
 */
struct TunerSignals
{
    /** Interval wall time. <= 0 means unknown (replayed dumps without
     *  an interval; decide() then estimates from the busy terms). */
    double interval_s = 0.0;
    double batches = 0.0;
    double ooo_batches = 0.0;
    /** Main-process [T2] wait. */
    double wait_s = 0.0;
    /** Sum of worker fetch busy time ([T1] spans; includes store I/O
     *  when read-ahead is off, decode-only when it is on). */
    double fetch_busy_s = 0.0;
    /** Collate share of fetch busy time ([T3] "Collate" op). */
    double collate_s = 0.0;
    double store_read_s = 0.0;
    double store_reads = 0.0;
    double readahead_hits = 0.0;
    double readahead_misses = 0.0;
    /** Distinct lotus_loader_fetch_ns{worker=} series with traffic. */
    int observed_workers = 0;

    double oooRatio() const
    {
        return batches > 0 ? ooo_batches / batches : 0.0;
    }
    double missRatio() const
    {
        const double claims = readahead_hits + readahead_misses;
        return claims > 0 ? readahead_misses / claims : 0.0;
    }
    /** Store I/O share of fetch busy time (can exceed 1 when reads
     *  run on dedicated I/O threads outside the fetch spans). */
    double storeFraction() const
    {
        if (fetch_busy_s <= 0.0)
            return store_read_s > 0.0 ? 1.0 : 0.0;
        return store_read_s / fetch_busy_s;
    }
};

/** Extract model inputs from one interval's Snapshot diff. */
TunerSignals signalsFromSnapshot(const metrics::Snapshot &delta);

struct TunerDecision
{
    dataflow::LoaderReconfig config;
    Bottleneck bottleneck = Bottleneck::kUnknown;
    /** config differs from the previous decision's. */
    bool changed = false;
    /** Human-readable model verdict for logs / lotus_tune output. */
    std::string reason;
};

/**
 * The online controller. Feed it one Snapshot per epoch boundary
 * (onEpochEnd) — it diffs internally against the previous call — or
 * hand it pre-extracted signals (decide) when replaying a dump.
 *
 * The model, in decision order:
 *
 *  1. No batches -> kUnknown, keep the config.
 *  2. wait fraction < consumer_wait_threshold -> kConsumer: the
 *     pipeline outruns the consumer; trim workers to measured demand
 *     (never raises them).
 *  3. store share > store_io_threshold AND the window is absent,
 *     missing, or refilling at saturated I/O threads -> kStoreIo:
 *     enable read-ahead via Little's law (target rate x mean read
 *     latency x headroom) and size workers to the decode-only demand,
 *     or double an enabled window that cannot keep up.
 *  4. collate share > collate_threshold -> kCollate, else kDecodeCpu:
 *     raise workers to ceil(demand / consumer budget) (never lowers
 *     them), floor prefetch at min_prefetch.
 *  5. Orthogonally, sentinel ratio > sentinel_flip_threshold with > 1
 *     worker flips round-robin to work-stealing.
 *
 * The asymmetry in 2 vs 4 (trim only when consumer-bound, grow only
 * when pipeline-bound) is the hysteresis that keeps the controller
 * from oscillating around a balanced pipeline.
 */
class PipelineTuner
{
  public:
    explicit PipelineTuner(const dataflow::LoaderReconfig &initial,
                           const TunerOptions &options = {});

    /**
     * Record an epoch boundary: diff @p snapshot against the previous
     * call's and decide. The first call has no baseline and returns
     * kUnknown with the current config.
     */
    TunerDecision onEpochEnd(const metrics::Snapshot &snapshot);

    /** Pure decision from one interval's signals. Updates the held
     *  config and publishes the tuner gauges, like onEpochEnd. */
    TunerDecision decide(const TunerSignals &signals);

    const dataflow::LoaderReconfig &config() const { return config_; }
    const TunerOptions &options() const { return options_; }

  private:
    /** Stamp changed, adopt the config, and export the gauges. */
    void publish(TunerDecision &decision);

    TunerOptions options_;
    dataflow::LoaderReconfig config_;
    metrics::Snapshot last_;
    bool have_last_ = false;

    metrics::Counter *decisions_ = nullptr;
    metrics::Counter *changes_ = nullptr;
    metrics::Gauge *bottleneck_gauge_ = nullptr;
    metrics::Gauge *workers_gauge_ = nullptr;
    metrics::Gauge *prefetch_gauge_ = nullptr;
    metrics::Gauge *schedule_gauge_ = nullptr;
    metrics::Gauge *depth_gauge_ = nullptr;
};

} // namespace lotus::tuner

#endif // LOTUS_TUNER_TUNER_H
