/**
 * @file
 * Offline inputs for the tuner: reconstruct model signals from the
 * artifacts a profiling run leaves behind, so `lotus_tune` can issue
 * a recommendation without re-running the pipeline.
 *
 *  - A metrics JSON dump (metrics::toJson, schema v1) parses back
 *    into a metrics::Snapshot; two dumps diff into an interval.
 *  - A Chrome trace (.trace.json, the visualize.cc event naming)
 *    reverse-maps by category: "preprocess"/"task" spans carry fetch
 *    busy time, "wait" spans the [T2] wait (1 µs sentinels = the
 *    out-of-order count), "io" spans the store reads, "op" spans the
 *    per-op times.
 */

#ifndef LOTUS_TUNER_REPLAY_H
#define LOTUS_TUNER_REPLAY_H

#include <string>
#include <vector>

#include "metrics/snapshot.h"
#include "trace/chrome_trace.h"
#include "tuner/tuner.h"

namespace lotus::tuner {

/**
 * Parse a metrics JSON endpoint document back into a Snapshot.
 * Fatal on malformed JSON; unknown keys are ignored. taken_at is the
 * dump's taken_at_ns.
 */
metrics::Snapshot snapshotFromMetricsJson(const std::string &json);

/** Model signals from a Chrome trace's events. The interval is the
 *  event span; read-ahead hit/miss counters are not traced and stay
 *  0 (replayed store verdicts treat the window as absent). */
TunerSignals signalsFromChromeEvents(
    const std::vector<trace::ChromeEvent> &events);

} // namespace lotus::tuner

#endif // LOTUS_TUNER_REPLAY_H
