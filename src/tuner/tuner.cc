#include "tuner/tuner.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "dataflow/read_ahead.h"
#include "pipeline/collate.h"
#include "pipeline/traced_store.h"

namespace lotus::tuner {

using dataflow::LoaderReconfig;
using dataflow::Schedule;

const char *
bottleneckName(Bottleneck bottleneck)
{
    switch (bottleneck) {
    case Bottleneck::kUnknown:
        return "unknown";
    case Bottleneck::kDecodeCpu:
        return "decode-cpu";
    case Bottleneck::kStoreIo:
        return "store-io";
    case Bottleneck::kCollate:
        return "collate";
    case Bottleneck::kConsumer:
        return "consumer";
    }
    return "unknown";
}

namespace {

constexpr double kNsPerSec = 1e9;

bool
isFetchSeries(const std::string &name)
{
    // lotus_loader_fetch_ns{worker="..."}
    return name.rfind("lotus_loader_fetch_ns", 0) == 0;
}

} // namespace

TunerSignals
signalsFromSnapshot(const metrics::Snapshot &delta)
{
    TunerSignals signals;
    signals.interval_s = toSec(delta.taken_at);

    const auto counter = [&](const char *name) -> double {
        const auto it = delta.counters.find(name);
        return it == delta.counters.end()
                   ? 0.0
                   : static_cast<double>(it->second);
    };
    signals.batches = counter("lotus_loader_batches_total");
    signals.ooo_batches = counter("lotus_loader_ooo_batches_total");
    signals.wait_s = counter("lotus_loader_wait_ns_total") / kNsPerSec;
    signals.readahead_hits = counter(dataflow::kReadAheadHitsMetric);
    signals.readahead_misses = counter(dataflow::kReadAheadMissesMetric);

    for (const auto &[name, hist] : delta.histograms) {
        if (isFetchSeries(name)) {
            signals.fetch_busy_s +=
                static_cast<double>(hist.sum) / kNsPerSec;
            if (hist.count > 0)
                ++signals.observed_workers;
        } else if (name == pipeline::kStoreReadNsMetric) {
            signals.store_read_s =
                static_cast<double>(hist.sum) / kNsPerSec;
            signals.store_reads = static_cast<double>(hist.count);
        } else if (name == metrics::labeled("lotus_pipeline_op_ns", "op",
                                            pipeline::Collate::kOpName)) {
            signals.collate_s = static_cast<double>(hist.sum) / kNsPerSec;
        }
    }
    return signals;
}

PipelineTuner::PipelineTuner(const LoaderReconfig &initial,
                             const TunerOptions &options)
    : options_(options), config_(initial)
{
    auto &registry = metrics::MetricsRegistry::instance();
    decisions_ = registry.counter(kTunerDecisionsMetric);
    changes_ = registry.counter(kTunerChangesMetric);
    bottleneck_gauge_ = registry.gauge(kTunerBottleneckMetric);
    workers_gauge_ = registry.gauge(kTunerWorkersMetric);
    prefetch_gauge_ = registry.gauge(kTunerPrefetchMetric);
    schedule_gauge_ = registry.gauge(kTunerScheduleMetric);
    depth_gauge_ = registry.gauge(kTunerReadAheadDepthMetric);
}

TunerDecision
PipelineTuner::onEpochEnd(const metrics::Snapshot &snapshot)
{
    if (!have_last_) {
        last_ = snapshot;
        have_last_ = true;
        TunerDecision decision;
        decision.config = config_;
        decision.bottleneck = Bottleneck::kUnknown;
        decision.reason = "baseline interval; keeping config";
        publish(decision);
        return decision;
    }
    const metrics::Snapshot delta = metrics::diff(snapshot, last_);
    last_ = snapshot;
    return decide(signalsFromSnapshot(delta));
}

TunerDecision
PipelineTuner::decide(const TunerSignals &signals)
{
    TunerDecision decision;
    decision.config = config_;

    if (signals.batches < 1.0) {
        decision.bottleneck = Bottleneck::kUnknown;
        decision.reason = "no batches in interval; keeping config";
        publish(decision);
        return decision;
    }

    // Replayed dumps can lack a wall interval; the wall is then at
    // least the fleet-parallel busy time and at least the [T2] wait.
    const int live_workers = std::max(
        config_.num_workers > 0 ? config_.num_workers
                                : signals.observed_workers,
        1);
    double interval = signals.interval_s;
    if (interval <= 0.0)
        interval = std::max(signals.fetch_busy_s / live_workers,
                            signals.wait_s);
    if (interval <= 0.0) {
        decision.bottleneck = Bottleneck::kUnknown;
        decision.reason = "no interval timing; keeping config";
        publish(decision);
        return decision;
    }

    const double wait_frac = std::min(1.0, signals.wait_s / interval);
    // What the consumer spends per interval outside the [T2] wait:
    // the budget one worker-second of demand must fit into for the
    // pipeline to keep the consumer fed.
    const double consume_s = std::max(interval - signals.wait_s, 1e-6);
    const bool ra_on = config_.read_ahead_depth > 0;
    const double store_frac = signals.storeFraction();
    const double miss_ratio = signals.missRatio();
    // How busy the dedicated I/O threads are with store reads. Near
    // saturation the window is refilling as slowly as it drains, so
    // claims block inside the window (counted as hits, not misses).
    const double io_util =
        ra_on && config_.io_threads > 0
            ? signals.store_read_s / (config_.io_threads * interval)
            : 0.0;
    const double busy = std::max(signals.fetch_busy_s, 1e-9);
    const double collate_frac = std::min(1.0, signals.collate_s / busy);

    const auto demand_workers = [&](double demand_s) {
        return static_cast<int>(
            std::ceil(demand_s / std::max(consume_s, 1e-6)));
    };

    if (wait_frac < options_.consumer_wait_threshold) {
        // The main process almost never blocks: adding preprocessing
        // throughput cannot help. Trim to measured demand (in cores)
        // but never grow here — the asymmetry that prevents
        // oscillation around a balanced pipeline.
        decision.bottleneck = Bottleneck::kConsumer;
        int target = static_cast<int>(
            std::ceil(signals.fetch_busy_s / interval));
        target = std::clamp(target, options_.min_workers,
                            std::max(config_.num_workers,
                                     options_.min_workers));
        decision.config.num_workers = target;
        decision.reason = strFormat(
            "consumer-bound: wait fraction %.2f < %.2f; workers -> %d",
            wait_frac, options_.consumer_wait_threshold, target);
    } else if (store_frac > options_.store_io_threshold &&
               (!ra_on ||
                miss_ratio > options_.readahead_miss_threshold ||
                io_util > options_.readahead_io_util_threshold)) {
        // Store round trips dominate and no (sufficient) read-ahead
        // window hides them. With a window already on, misses — or
        // saturated I/O threads — mean it is too shallow: double it.
        // Otherwise size the window by Little's law against the
        // post-fix sample rate.
        decision.bottleneck = Bottleneck::kStoreIo;
        if (ra_on) {
            const int depth =
                std::min(config_.read_ahead_depth * 2,
                         options_.max_read_ahead_depth);
            decision.config.read_ahead_depth = depth;
            decision.reason = strFormat(
                "store-io-bound: miss ratio %.2f, io util %.2f; "
                "read-ahead depth -> %d",
                miss_ratio, io_util, depth);
        } else {
            const double mean_read_s =
                signals.store_reads > 0
                    ? signals.store_read_s / signals.store_reads
                    : 0.0;
            // Fetch busy time includes the synchronous reads; what
            // remains once they move to the I/O threads is the decode
            // demand the workers must still cover.
            const double decode_s =
                std::max(signals.fetch_busy_s - signals.store_read_s,
                         0.0);
            int workers = std::clamp(
                std::max(demand_workers(decode_s), config_.num_workers),
                options_.min_workers, options_.max_workers);
            const double post_wall =
                std::max(decode_s / workers, consume_s);
            const double rate =
                signals.store_reads / std::max(post_wall, 1e-6);
            int depth = static_cast<int>(std::ceil(
                rate * mean_read_s * options_.readahead_headroom));
            depth = std::clamp(depth, 4, options_.max_read_ahead_depth);
            decision.config.read_ahead_depth = depth;
            decision.config.io_threads = options_.read_ahead_io_threads;
            decision.config.num_workers = workers;
            if (decision.config.prefetch_factor < options_.min_prefetch)
                decision.config.prefetch_factor = options_.min_prefetch;
            decision.reason = strFormat(
                "store-io-bound: store share %.2f > %.2f; read-ahead "
                "depth -> %d (x%d io threads), workers -> %d",
                store_frac, options_.store_io_threshold, depth,
                decision.config.io_threads, workers);
        }
    } else {
        // Pipeline-bound on CPU. Demand is the fleet's busy time; the
        // budget is the consumer's non-wait time — enough workers to
        // finish the demand inside it keep the consumer fed.
        decision.bottleneck = collate_frac > options_.collate_threshold
                                  ? Bottleneck::kCollate
                                  : Bottleneck::kDecodeCpu;
        const int target = std::clamp(
            std::max(demand_workers(signals.fetch_busy_s),
                     config_.num_workers),
            options_.min_workers, options_.max_workers);
        decision.config.num_workers = target;
        if (decision.config.prefetch_factor < options_.min_prefetch)
            decision.config.prefetch_factor = options_.min_prefetch;
        decision.reason = strFormat(
            "%s-bound: wait fraction %.2f, collate share %.2f; "
            "workers -> %d",
            decision.bottleneck == Bottleneck::kCollate ? "collate"
                                                        : "decode-cpu",
            wait_frac, collate_frac, target);
    }

    // Straggler skew is orthogonal to the resource verdict: a high
    // [T2] sentinel ratio with multiple workers means whole batches
    // queue behind stragglers, which work-stealing absorbs (PR-5
    // follow-up).
    if (options_.allow_schedule_flip &&
        decision.config.schedule == Schedule::kRoundRobin &&
        decision.config.num_workers > 1 &&
        signals.oooRatio() > options_.sentinel_flip_threshold) {
        decision.config.schedule = Schedule::kWorkStealing;
        decision.reason += strFormat(
            "; sentinel ratio %.2f > %.2f -> work-stealing",
            signals.oooRatio(), options_.sentinel_flip_threshold);
    }

    publish(decision);
    return decision;
}

void
PipelineTuner::publish(TunerDecision &decision)
{
    decision.changed = decision.config != config_;
    config_ = decision.config;
    decisions_->add(1);
    if (decision.changed)
        changes_->add(1);
    bottleneck_gauge_->set(static_cast<int>(decision.bottleneck));
    workers_gauge_->set(config_.num_workers);
    prefetch_gauge_->set(config_.prefetch_factor);
    schedule_gauge_->set(
        config_.schedule == Schedule::kWorkStealing ? 1 : 0);
    depth_gauge_->set(config_.read_ahead_depth);
}

} // namespace lotus::tuner
