#include "tuner/replay.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "trace/chrome_reader.h"

namespace lotus::tuner {

namespace {

using trace::detail::JsonValue;

std::uint64_t
asU64(const JsonValue &value)
{
    return value.number < 0 ? 0
                            : static_cast<std::uint64_t>(value.number);
}

} // namespace

metrics::Snapshot
snapshotFromMetricsJson(const std::string &json)
{
    const JsonValue doc = trace::detail::parseJson(json);
    LOTUS_ASSERT(doc.kind == JsonValue::Kind::Object,
                 "metrics dump is not a JSON object");
    metrics::Snapshot snapshot;
    if (const JsonValue *taken = doc.find("taken_at_ns"))
        snapshot.taken_at = static_cast<TimeNs>(taken->number);
    if (const JsonValue *counters = doc.find("counters")) {
        for (const auto &[name, value] : counters->object)
            snapshot.counters[name] = asU64(value);
    }
    if (const JsonValue *gauges = doc.find("gauges")) {
        for (const auto &[name, value] : gauges->object)
            snapshot.gauges[name] =
                static_cast<std::int64_t>(value.number);
    }
    if (const JsonValue *histograms = doc.find("histograms")) {
        for (const auto &[name, value] : histograms->object) {
            metrics::Snapshot::Hist hist;
            if (const JsonValue *count = value.find("count"))
                hist.count = asU64(*count);
            if (const JsonValue *sum = value.find("sum"))
                hist.sum = asU64(*sum);
            if (const JsonValue *p = value.find("p50"))
                hist.p50 = asU64(*p);
            if (const JsonValue *p = value.find("p90"))
                hist.p90 = asU64(*p);
            if (const JsonValue *p = value.find("p99"))
                hist.p99 = asU64(*p);
            if (const JsonValue *buckets = value.find("buckets")) {
                for (const JsonValue &pair : buckets->array) {
                    if (pair.array.size() != 2)
                        continue;
                    hist.buckets.emplace_back(asU64(pair.array[0]),
                                              asU64(pair.array[1]));
                }
            }
            snapshot.histograms[name] = std::move(hist);
        }
    }
    return snapshot;
}

TunerSignals
signalsFromChromeEvents(const std::vector<trace::ChromeEvent> &events)
{
    TunerSignals signals;
    double begin_us = 0.0, end_us = 0.0;
    bool any = false;
    double preprocess_s = 0.0, task_s = 0.0;
    std::unordered_set<std::int64_t> worker_pids;
    std::uint64_t preprocess_spans = 0, consume_spans = 0;

    // The [T2] out-of-order sentinel is exactly 1 µs
    // (trace::kOutOfOrderSentinel); real waits are orders of
    // magnitude longer, so a small tolerance suffices.
    constexpr double kSentinelUs = 1.05;

    for (const trace::ChromeEvent &event : events) {
        if (event.phase != 'X')
            continue;
        const double dur_s = event.dur_us / 1e6;
        if (!any || event.ts_us < begin_us)
            begin_us = event.ts_us;
        if (!any || event.ts_us + event.dur_us > end_us)
            end_us = event.ts_us + event.dur_us;
        any = true;
        if (event.category == "wait") {
            signals.wait_s += dur_s;
            if (event.dur_us <= kSentinelUs)
                signals.ooo_batches += 1.0;
        } else if (event.category == "preprocess") {
            preprocess_s += dur_s;
            ++preprocess_spans;
            worker_pids.insert(event.pid);
        } else if (event.category == "task") {
            task_s += dur_s;
            worker_pids.insert(event.pid);
        } else if (event.category == "consume") {
            ++consume_spans;
        } else if (event.category == "io") {
            signals.store_read_s += dur_s;
            signals.store_reads += 1.0;
        } else if (event.category == "op" && event.name == "SCollate") {
            signals.collate_s += dur_s;
        }
    }

    // Under work-stealing the whole-batch preprocess spans overlap the
    // per-sample task spans that actually occupy workers; prefer the
    // tasks when present.
    signals.fetch_busy_s = task_s > 0.0 ? task_s : preprocess_s;
    signals.batches = static_cast<double>(
        consume_spans > 0 ? consume_spans : preprocess_spans);
    signals.observed_workers = static_cast<int>(worker_pids.size());
    if (any)
        signals.interval_s = (end_us - begin_us) / 1e6;
    return signals;
}

} // namespace lotus::tuner
