/**
 * @file
 * Flat binary tensor (de)serialization — the "numpy file" analogue
 * used by the segmentation workload's preprocessed dataset.
 */

#ifndef LOTUS_TENSOR_SERIALIZE_H
#define LOTUS_TENSOR_SERIALIZE_H

#include <string>

#include "tensor/tensor.h"

namespace lotus::tensor {

/** Serialize to a self-describing byte string. */
std::string toBytes(const Tensor &input);

/** Parse bytes produced by toBytes(). Fatal on malformed input. */
Tensor fromBytes(const std::string &bytes);

} // namespace lotus::tensor

#endif // LOTUS_TENSOR_SERIALIZE_H
