#include "tensor/serialize.h"

#include <cstring>

#include "hwcount/registry.h"

namespace lotus::tensor {

namespace {

constexpr char kMagic[4] = {'L', 'T', '0', '1'};

void
appendU64(std::string &out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

std::uint64_t
readU64(const std::string &bytes, std::size_t offset)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
        value |= static_cast<std::uint64_t>(
                     static_cast<std::uint8_t>(bytes[offset + i]))
                 << (8 * i);
    }
    return value;
}

} // namespace

std::string
toBytes(const Tensor &input)
{
    hwcount::KernelScope scope(hwcount::KernelId::QueueSerialize);
    std::string out;
    out.reserve(16 + input.rank() * 8 + input.byteSize());
    out.append(kMagic, sizeof(kMagic));
    out.push_back(static_cast<char>(input.dtype()));
    out.push_back(static_cast<char>(input.rank()));
    for (const auto dim : input.shape())
        appendU64(out, static_cast<std::uint64_t>(dim));
    out.append(reinterpret_cast<const char *>(input.raw()),
               input.byteSize());
    scope.stats().bytes_read += input.byteSize();
    scope.stats().bytes_written += out.size();
    scope.stats().items += 1;
    return out;
}

Tensor
fromBytes(const std::string &bytes)
{
    hwcount::KernelScope scope(hwcount::KernelId::QueueDeserialize);
    if (bytes.size() < 6 || std::memcmp(bytes.data(), kMagic, 4) != 0)
        LOTUS_FATAL("not a serialized tensor (%zu bytes)", bytes.size());
    const auto dtype = static_cast<DType>(bytes[4]);
    LOTUS_ASSERT(dtype == DType::U8 || dtype == DType::F32,
                 "bad dtype byte %d", bytes[4]);
    const auto rank = static_cast<std::size_t>(
        static_cast<std::uint8_t>(bytes[5]));
    LOTUS_ASSERT(bytes.size() >= 6 + rank * 8, "truncated tensor header");
    std::vector<std::int64_t> shape(rank);
    for (std::size_t i = 0; i < rank; ++i)
        shape[i] = static_cast<std::int64_t>(readU64(bytes, 6 + i * 8));
    Tensor out(dtype, shape);
    const std::size_t payload_offset = 6 + rank * 8;
    LOTUS_ASSERT(bytes.size() == payload_offset + out.byteSize(),
                 "tensor payload size mismatch (%zu vs %zu)",
                 bytes.size() - payload_offset, out.byteSize());
    std::memcpy(out.raw(), bytes.data() + payload_offset, out.byteSize());
    scope.stats().bytes_read += bytes.size();
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += 1;
    return out;
}

} // namespace lotus::tensor
