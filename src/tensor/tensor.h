/**
 * @file
 * Dense in-memory tensors, the data currency of preprocessing.
 *
 * A deliberately small numpy/torch analogue: contiguous row-major
 * storage, u8 or f32 elements, explicit shapes. Image decoding
 * produces HWC u8 tensors (via lotus::image), ToTensor converts to
 * CHW f32, segmentation volumes are CDHW, and collation stacks a
 * leading batch dimension.
 */

#ifndef LOTUS_TENSOR_TENSOR_H
#define LOTUS_TENSOR_TENSOR_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "memory/buffer_pool.h"

namespace lotus::tensor {

enum class DType : std::uint8_t
{
    U8,
    F32,
};

/** Element size in bytes. */
std::size_t dtypeSize(DType dtype);

/** "u8" / "f32". */
const char *dtypeName(DType dtype);

class Tensor
{
  public:
    /** Empty tensor (numel 0, no storage). */
    Tensor() = default;

    /** Zero-initialized tensor of the given shape. */
    Tensor(DType dtype, std::vector<std::int64_t> shape);

    /** Tensor with indeterminate contents, for producers that are
     *  about to overwrite every element (decode/cast/collate): skips
     *  the zero fill of the regular constructor. */
    static Tensor uninitialized(DType dtype,
                                std::vector<std::int64_t> shape);

    DType dtype() const { return dtype_; }
    const std::vector<std::int64_t> &shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }

    /** Size of dimension @p i (supports negative indices). */
    std::int64_t dim(int i) const;

    /** Total number of elements. */
    std::int64_t numel() const { return numel_; }

    /** Total storage in bytes. */
    std::size_t byteSize() const { return data_.size(); }

    bool empty() const { return numel_ == 0; }

    /** Typed element access; panics on dtype mismatch. */
    template <typename T>
    T *
    data()
    {
        checkType<T>();
        return reinterpret_cast<T *>(data_.data());
    }

    template <typename T>
    const T *
    data() const
    {
        checkType<T>();
        return reinterpret_cast<const T *>(data_.data());
    }

    std::uint8_t *raw() { return data_.data(); }
    const std::uint8_t *raw() const { return data_.data(); }

    /** Deep copy. */
    Tensor clone() const;

    /**
     * Reinterpret the storage with a new shape (same numel).
     * Cheap: storage is moved, not copied, on rvalue use.
     */
    Tensor reshaped(std::vector<std::int64_t> shape) &&;

    bool sameShape(const Tensor &other) const;

    /** "f32[3, 224, 224]" */
    std::string description() const;

  private:
    template <typename T>
    void
    checkType() const
    {
        if constexpr (std::is_same_v<T, std::uint8_t>) {
            LOTUS_ASSERT(dtype_ == DType::U8, "tensor is %s not u8",
                         dtypeName(dtype_));
        } else if constexpr (std::is_same_v<T, float>) {
            LOTUS_ASSERT(dtype_ == DType::F32, "tensor is %s not f32",
                         dtypeName(dtype_));
        } else {
            static_assert(std::is_same_v<T, std::uint8_t> ||
                              std::is_same_v<T, float>,
                          "unsupported element type");
        }
    }

    struct Uninit
    {
    };
    Tensor(DType dtype, std::vector<std::int64_t> shape, Uninit);

    DType dtype_ = DType::U8;
    std::vector<std::int64_t> shape_;
    std::int64_t numel_ = 0;
    /** Pooled storage: reads up to memory::kSlackBytes past
     *  byteSize() are in bounds (SIMD tail loads). */
    memory::PooledArray<std::uint8_t> data_;
};

} // namespace lotus::tensor

#endif // LOTUS_TENSOR_TENSOR_H
