/**
 * @file
 * Tensor compute kernels used by preprocessing operations.
 *
 * Every function here does real elementwise/copy work and annotates
 * itself in the kernel registry (hwcount), so hardware-level profiling
 * observes these as native leaf functions — the liblotustensor
 * analogue of the ATen/numpy kernels in the paper's stack.
 */

#ifndef LOTUS_TENSOR_OPS_H
#define LOTUS_TENSOR_OPS_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace lotus::tensor {

/**
 * Convert a u8 tensor to f32, multiplying by @p scale
 * (ToTensor uses 1/255).
 */
Tensor castU8ToF32(const Tensor &input, float scale = 1.0f / 255.0f);

/** Convert an f32 tensor to u8 with clamping to [0, 255]. */
Tensor castF32ToU8(const Tensor &input, float scale = 1.0f);

/** Permute an HWC u8 image tensor to CHW (still u8). */
Tensor hwcToChw(const Tensor &hwc);

/**
 * In-place per-channel normalization of a CHW (or C-first N-D) f32
 * tensor: x = (x - mean[c]) / stddev[c].
 */
void normalizeChannels(Tensor &cfirst, const std::vector<float> &mean,
                       const std::vector<float> &stddev);

/** In-place brightness scaling: x *= factor. */
void scaleBrightness(Tensor &input, float factor);

/** In-place additive Gaussian noise on an f32 tensor. */
void addGaussianNoise(Tensor &input, Rng &rng, float mean, float stddev);

/** Copy with one axis reversed (RandomFlip on tensors/volumes). */
Tensor flipAxis(const Tensor &input, int axis);

/**
 * Copy a window: output[i] = input[i + offset] for every axis.
 * @p offsets and @p sizes must match the tensor rank.
 */
Tensor cropWindow(const Tensor &input, const std::vector<std::int64_t> &offsets,
                  const std::vector<std::int64_t> &sizes);

/**
 * Scan a C-first tensor's channel 0 for "foreground" (elements above
 * @p threshold), returning indices of the flattened spatial positions
 * found, up to @p max_results. Works on u8 and f32 tensors. Models
 * the irregular-access search in RandBalancedCrop.
 */
std::vector<std::int64_t> foregroundSearch(const Tensor &input,
                                           float threshold,
                                           std::size_t max_results);

/**
 * Zero-pad @p input at the high end of each axis up to
 * @p target_shape (no-op when shapes already match). Every target
 * extent must be >= the input's.
 */
Tensor padTo(const Tensor &input,
             const std::vector<std::int64_t> &target_shape);

/** Stack equally shaped tensors along a new leading batch axis. */
Tensor stack(const std::vector<Tensor> &items);

/** Stack via pointers (avoids copying the input vector). */
Tensor stack(const std::vector<const Tensor *> &items);

/** Stack into an existing batch tensor of shape [N, item...] (same
 *  dtype); lets collate reuse a recycled batch's storage. */
void stackInto(const std::vector<const Tensor *> &items, Tensor &out);

} // namespace lotus::tensor

#endif // LOTUS_TENSOR_OPS_H
