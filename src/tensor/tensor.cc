#include "tensor/tensor.h"

#include <numeric>

#include "common/strings.h"

namespace lotus::tensor {

std::size_t
dtypeSize(DType dtype)
{
    switch (dtype) {
      case DType::U8: return 1;
      case DType::F32: return 4;
    }
    LOTUS_PANIC("bad dtype %d", static_cast<int>(dtype));
}

const char *
dtypeName(DType dtype)
{
    switch (dtype) {
      case DType::U8: return "u8";
      case DType::F32: return "f32";
    }
    LOTUS_PANIC("bad dtype %d", static_cast<int>(dtype));
}

namespace {

std::int64_t
shapeNumel(const std::vector<std::int64_t> &shape)
{
    std::int64_t numel = 1;
    for (const auto dim : shape) {
        LOTUS_ASSERT(dim >= 0, "negative dimension %lld",
                     static_cast<long long>(dim));
        numel *= dim;
    }
    return numel;
}

} // namespace

Tensor::Tensor(DType dtype, std::vector<std::int64_t> shape)
    : dtype_(dtype), shape_(std::move(shape)), numel_(shapeNumel(shape_)),
      data_(static_cast<std::size_t>(numel_) * dtypeSize(dtype),
            /*zero=*/true)
{
}

Tensor::Tensor(DType dtype, std::vector<std::int64_t> shape, Uninit)
    : dtype_(dtype), shape_(std::move(shape)), numel_(shapeNumel(shape_)),
      data_(static_cast<std::size_t>(numel_) * dtypeSize(dtype),
            /*zero=*/false)
{
}

Tensor
Tensor::uninitialized(DType dtype, std::vector<std::int64_t> shape)
{
    return Tensor(dtype, std::move(shape), Uninit{});
}

std::int64_t
Tensor::dim(int i) const
{
    const int rank = static_cast<int>(shape_.size());
    if (i < 0)
        i += rank;
    LOTUS_ASSERT(i >= 0 && i < rank, "dim %d out of range for rank %d", i,
                 rank);
    return shape_[static_cast<std::size_t>(i)];
}

Tensor
Tensor::clone() const
{
    Tensor copy(dtype_, shape_);
    copy.data_ = data_;
    return copy;
}

Tensor
Tensor::reshaped(std::vector<std::int64_t> shape) &&
{
    LOTUS_ASSERT(shapeNumel(shape) == numel_,
                 "reshape changes element count");
    shape_ = std::move(shape);
    return std::move(*this);
}

bool
Tensor::sameShape(const Tensor &other) const
{
    return shape_ == other.shape_;
}

std::string
Tensor::description() const
{
    std::vector<std::string> dims;
    dims.reserve(shape_.size());
    for (const auto dim : shape_)
        dims.push_back(strFormat("%lld", static_cast<long long>(dim)));
    return std::string(dtypeName(dtype_)) + "[" + strJoin(dims, ", ") + "]";
}

} // namespace lotus::tensor
