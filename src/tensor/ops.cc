#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "hwcount/registry.h"
#include "simd/dispatch.h"

namespace lotus::tensor {

using hwcount::KernelId;
using hwcount::KernelScope;

Tensor
castU8ToF32(const Tensor &input, float scale)
{
    KernelScope scope(KernelId::CastU8ToF32);
    Tensor out = Tensor::uninitialized(DType::F32, input.shape());
    const std::uint8_t *src = input.data<std::uint8_t>();
    float *dst = out.data<float>();
    const std::int64_t n = input.numel();
    simd::kernels().cast_u8_f32(src, dst, n, scale);
    scope.stats().bytes_read += static_cast<std::uint64_t>(n);
    scope.stats().bytes_written += static_cast<std::uint64_t>(n) * 4;
    scope.stats().arith_ops += static_cast<std::uint64_t>(n);
    scope.stats().items += static_cast<std::uint64_t>(n);
    return out;
}

Tensor
castF32ToU8(const Tensor &input, float scale)
{
    KernelScope scope(KernelId::CastF32ToU8);
    Tensor out(DType::U8, input.shape());
    const float *src = input.data<float>();
    std::uint8_t *dst = out.data<std::uint8_t>();
    const std::int64_t n = input.numel();
    for (std::int64_t i = 0; i < n; ++i) {
        const float v = src[i] * scale;
        dst[i] = static_cast<std::uint8_t>(
            std::clamp(v, 0.0f, 255.0f));
    }
    scope.stats().bytes_read += static_cast<std::uint64_t>(n) * 4;
    scope.stats().bytes_written += static_cast<std::uint64_t>(n);
    scope.stats().arith_ops += static_cast<std::uint64_t>(n) * 2;
    scope.stats().items += static_cast<std::uint64_t>(n);
    return out;
}

Tensor
hwcToChw(const Tensor &hwc)
{
    LOTUS_ASSERT(hwc.rank() == 3, "hwcToChw expects rank 3, got %zu",
                 hwc.rank());
    KernelScope scope(KernelId::UnpackRgb);
    const std::int64_t h = hwc.dim(0);
    const std::int64_t w = hwc.dim(1);
    const std::int64_t c = hwc.dim(2);
    Tensor out(hwc.dtype(), {c, h, w});
    const std::size_t esize = dtypeSize(hwc.dtype());
    const std::uint8_t *src = hwc.raw();
    std::uint8_t *dst = out.raw();
    for (std::int64_t ch = 0; ch < c; ++ch) {
        for (std::int64_t y = 0; y < h; ++y) {
            for (std::int64_t x = 0; x < w; ++x) {
                const std::size_t s =
                    static_cast<std::size_t>(((y * w + x) * c + ch)) * esize;
                const std::size_t d =
                    static_cast<std::size_t>(((ch * h + y) * w + x)) * esize;
                for (std::size_t b = 0; b < esize; ++b)
                    dst[d + b] = src[s + b];
            }
        }
    }
    const std::uint64_t bytes = hwc.byteSize();
    scope.stats().bytes_read += bytes;
    scope.stats().bytes_written += bytes;
    scope.stats().random_accesses += static_cast<std::uint64_t>(h * w);
    scope.stats().items += static_cast<std::uint64_t>(hwc.numel());
    return out;
}

void
normalizeChannels(Tensor &cfirst, const std::vector<float> &mean,
                  const std::vector<float> &stddev)
{
    LOTUS_ASSERT(cfirst.rank() >= 2, "normalize expects channel-first");
    const auto channels = static_cast<std::size_t>(cfirst.dim(0));
    LOTUS_ASSERT(mean.size() == channels && stddev.size() == channels,
                 "mean/stddev size %zu != channels %zu", mean.size(),
                 channels);
    KernelScope scope(KernelId::NormalizeChannels);
    float *data = cfirst.data<float>();
    const std::int64_t per_channel = cfirst.numel() / cfirst.dim(0);
    const auto &kernel = simd::kernels();
    for (std::size_t c = 0; c < channels; ++c) {
        const float m = mean[c];
        const float inv = 1.0f / stddev[c];
        float *chan = data + static_cast<std::size_t>(per_channel) * c;
        kernel.normalize_f32(chan, per_channel, m, inv);
    }
    const std::uint64_t n = static_cast<std::uint64_t>(cfirst.numel());
    scope.stats().bytes_read += n * 4;
    scope.stats().bytes_written += n * 4;
    scope.stats().arith_ops += n * 2;
    scope.stats().items += n;
}

void
scaleBrightness(Tensor &input, float factor)
{
    KernelScope scope(KernelId::BrightnessScale);
    float *data = input.data<float>();
    const std::int64_t n = input.numel();
    for (std::int64_t i = 0; i < n; ++i)
        data[i] *= factor;
    const auto un = static_cast<std::uint64_t>(n);
    scope.stats().bytes_read += un * 4;
    scope.stats().bytes_written += un * 4;
    scope.stats().arith_ops += un;
    scope.stats().items += un;
}

void
addGaussianNoise(Tensor &input, Rng &rng, float mean, float stddev)
{
    KernelScope scope(KernelId::GaussianNoiseAdd);
    float *data = input.data<float>();
    const std::int64_t n = input.numel();
    for (std::int64_t i = 0; i < n; ++i)
        data[i] += static_cast<float>(rng.normal(mean, stddev));
    const auto un = static_cast<std::uint64_t>(n);
    scope.stats().bytes_read += un * 4;
    scope.stats().bytes_written += un * 4;
    scope.stats().arith_ops += un * 8; // box-muller is arithmetic heavy
    scope.stats().items += un;
}

Tensor
flipAxis(const Tensor &input, int axis)
{
    const int rank = static_cast<int>(input.rank());
    if (axis < 0)
        axis += rank;
    LOTUS_ASSERT(axis >= 0 && axis < rank, "flip axis %d out of range", axis);
    KernelScope scope(KernelId::FlipAxisCopy);

    Tensor out(input.dtype(), input.shape());
    const std::size_t esize = dtypeSize(input.dtype());
    // Treat the tensor as [outer, flip, inner] and reverse the middle.
    std::int64_t outer = 1, inner = 1;
    for (int i = 0; i < axis; ++i)
        outer *= input.dim(i);
    for (int i = axis + 1; i < rank; ++i)
        inner *= input.dim(i);
    const std::int64_t flip = input.dim(axis);
    const std::size_t inner_bytes = static_cast<std::size_t>(inner) * esize;

    const std::uint8_t *src = input.raw();
    std::uint8_t *dst = out.raw();
    for (std::int64_t o = 0; o < outer; ++o) {
        for (std::int64_t f = 0; f < flip; ++f) {
            const std::size_t s =
                static_cast<std::size_t>((o * flip + f)) * inner_bytes;
            const std::size_t d = static_cast<std::size_t>(
                                      (o * flip + (flip - 1 - f))) *
                                  inner_bytes;
            std::copy_n(src + s, inner_bytes, dst + d);
        }
    }
    scope.stats().bytes_read += input.byteSize();
    scope.stats().bytes_written += input.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(input.numel());
    return out;
}

Tensor
cropWindow(const Tensor &input, const std::vector<std::int64_t> &offsets,
           const std::vector<std::int64_t> &sizes)
{
    const std::size_t rank = input.rank();
    LOTUS_ASSERT(offsets.size() == rank && sizes.size() == rank,
                 "crop spec rank mismatch");
    for (std::size_t i = 0; i < rank; ++i) {
        LOTUS_ASSERT(offsets[i] >= 0 && sizes[i] >= 0 &&
                         offsets[i] + sizes[i] <= input.dim(static_cast<int>(i)),
                     "crop out of bounds on axis %zu", i);
    }
    KernelScope scope(KernelId::CropWindowCopy);
    Tensor out(input.dtype(), sizes);
    const std::size_t esize = dtypeSize(input.dtype());

    // Copy rows of the innermost axis.
    std::vector<std::int64_t> in_strides(rank, 1), idx(rank, 0);
    for (int i = static_cast<int>(rank) - 2; i >= 0; --i)
        in_strides[i] = in_strides[i + 1] * input.dim(i + 1);

    const std::int64_t inner = rank == 0 ? 1 : sizes[rank - 1];
    const std::size_t inner_bytes = static_cast<std::size_t>(inner) * esize;
    std::int64_t outer = 1;
    for (std::size_t i = 0; i + 1 < rank; ++i)
        outer *= sizes[i];

    const std::uint8_t *src = input.raw();
    std::uint8_t *dst = out.raw();
    for (std::int64_t o = 0; o < outer; ++o) {
        std::int64_t src_index = offsets[rank - 1];
        for (std::size_t i = 0; i + 1 < rank; ++i)
            src_index += (idx[i] + offsets[i]) * in_strides[i];
        std::copy_n(src + static_cast<std::size_t>(src_index) * esize,
                    inner_bytes,
                    dst + static_cast<std::size_t>(o) * inner_bytes);
        // Advance the multi-index over all but the innermost axis.
        for (int i = static_cast<int>(rank) - 2; i >= 0; --i) {
            if (++idx[i] < sizes[i])
                break;
            idx[i] = 0;
        }
    }
    scope.stats().bytes_read += out.byteSize();
    scope.stats().bytes_written += out.byteSize();
    scope.stats().random_accesses += static_cast<std::uint64_t>(outer);
    scope.stats().items += static_cast<std::uint64_t>(out.numel());
    return out;
}

std::vector<std::int64_t>
foregroundSearch(const Tensor &input, float threshold,
                 std::size_t max_results)
{
    KernelScope scope(KernelId::ForegroundSearch);
    std::vector<std::int64_t> hits;
    const std::int64_t per_channel =
        input.rank() >= 1 ? input.numel() / input.dim(0) : 0;
    std::uint64_t branches = 0;
    if (input.dtype() == DType::F32) {
        const float *data = input.data<float>();
        for (std::int64_t i = 0;
             i < per_channel && hits.size() < max_results; ++i) {
            ++branches;
            if (data[i] > threshold)
                hits.push_back(i);
        }
    } else {
        const std::uint8_t *data = input.data<std::uint8_t>();
        for (std::int64_t i = 0;
             i < per_channel && hits.size() < max_results; ++i) {
            ++branches;
            if (static_cast<float>(data[i]) > threshold)
                hits.push_back(i);
        }
    }
    scope.stats().bytes_read += static_cast<std::uint64_t>(per_channel) *
                                dtypeSize(input.dtype());
    scope.stats().branches += branches;
    scope.stats().random_accesses += hits.size();
    scope.stats().items += static_cast<std::uint64_t>(per_channel);
    return hits;
}

Tensor
padTo(const Tensor &input, const std::vector<std::int64_t> &target_shape)
{
    const std::size_t rank = input.rank();
    LOTUS_ASSERT(target_shape.size() == rank, "pad rank mismatch");
    bool same = true;
    for (std::size_t i = 0; i < rank; ++i) {
        LOTUS_ASSERT(target_shape[i] >= input.dim(static_cast<int>(i)),
                     "pad target smaller than input on axis %zu", i);
        same = same && target_shape[i] == input.dim(static_cast<int>(i));
    }
    if (same)
        return input.clone();

    KernelScope scope(KernelId::MemsetBulk);
    Tensor out(input.dtype(), target_shape);
    const std::size_t esize = dtypeSize(input.dtype());

    std::vector<std::int64_t> out_strides(rank, 1);
    for (int i = static_cast<int>(rank) - 2; i >= 0; --i)
        out_strides[static_cast<std::size_t>(i)] =
            out_strides[static_cast<std::size_t>(i) + 1] *
            target_shape[static_cast<std::size_t>(i) + 1];

    std::vector<std::int64_t> idx(rank, 0);
    std::int64_t outer = 1;
    for (std::size_t i = 0; i + 1 < rank; ++i)
        outer *= input.dim(static_cast<int>(i));
    const std::int64_t inner =
        rank == 0 ? 1 : input.dim(static_cast<int>(rank) - 1);
    const std::uint8_t *src = input.raw();
    std::uint8_t *dst = out.raw();
    for (std::int64_t o = 0; o < outer; ++o) {
        std::int64_t dst_index = 0;
        for (std::size_t i = 0; i + 1 < rank; ++i)
            dst_index += idx[i] * out_strides[i];
        std::copy_n(src + static_cast<std::size_t>(o * inner) * esize,
                    static_cast<std::size_t>(inner) * esize,
                    dst + static_cast<std::size_t>(dst_index) * esize);
        for (int i = static_cast<int>(rank) - 2; i >= 0; --i) {
            if (++idx[static_cast<std::size_t>(i)] < input.dim(i))
                break;
            idx[static_cast<std::size_t>(i)] = 0;
        }
    }
    scope.stats().bytes_read += input.byteSize();
    scope.stats().bytes_written += out.byteSize();
    scope.stats().items += static_cast<std::uint64_t>(out.numel());
    return out;
}

namespace {

/** Batch shape for stacking @p count items of @p first's shape. */
std::vector<std::int64_t>
stackedShape(const Tensor &first, std::size_t count)
{
    std::vector<std::int64_t> shape;
    shape.push_back(static_cast<std::int64_t>(count));
    shape.insert(shape.end(), first.shape().begin(), first.shape().end());
    return shape;
}

void
stackIntoImpl(const std::vector<const Tensor *> &items, Tensor &out)
{
    LOTUS_ASSERT(!items.empty(), "cannot stack zero tensors");
    const Tensor &first = *items.front();
    for (const Tensor *item : items) {
        LOTUS_ASSERT(item->sameShape(first) && item->dtype() == first.dtype(),
                     "stack requires equal shapes and dtypes");
    }
    LOTUS_ASSERT(out.dtype() == first.dtype() &&
                     out.shape() == stackedShape(first, items.size()),
                 "stack destination %s does not match",
                 out.description().c_str());
    KernelScope scope(KernelId::CollateCopy);
    const std::size_t item_bytes = first.byteSize();
    std::uint8_t *dst = out.raw();
    const auto &kernel = simd::kernels();
    for (std::size_t i = 0; i < items.size(); ++i)
        kernel.copy_bytes(items[i]->raw(), dst + i * item_bytes,
                          item_bytes);
    scope.stats().bytes_read += item_bytes * items.size();
    scope.stats().bytes_written += item_bytes * items.size();
    scope.stats().items += items.size();
}

Tensor
stackImpl(const std::vector<const Tensor *> &items)
{
    LOTUS_ASSERT(!items.empty(), "cannot stack zero tensors");
    Tensor out = Tensor::uninitialized(
        items.front()->dtype(), stackedShape(*items.front(), items.size()));
    stackIntoImpl(items, out);
    return out;
}

} // namespace

Tensor
stack(const std::vector<Tensor> &items)
{
    std::vector<const Tensor *> ptrs;
    ptrs.reserve(items.size());
    for (const auto &item : items)
        ptrs.push_back(&item);
    return stackImpl(ptrs);
}

Tensor
stack(const std::vector<const Tensor *> &items)
{
    return stackImpl(items);
}

void
stackInto(const std::vector<const Tensor *> &items, Tensor &out)
{
    stackIntoImpl(items, out);
}

} // namespace lotus::tensor
