/**
 * @file
 * lotus_map_capture — print the run-count plan for a LotusMap
 * isolation campaign (the paper's §IV-B capture arithmetic as a
 * utility).
 *
 *   lotus_map_capture <function_span_us> <sampling_interval_ms>
 *                     [confidence=0.75]
 */

#include <cstdio>
#include <cstdlib>

#include "common/clock.h"
#include "hwcount/sampling_driver.h"

int
main(int argc, char **argv)
{
    using namespace lotus;
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s <function_span_us> <interval_ms> "
                     "[confidence]\n",
                     argv[0]);
        return 2;
    }
    const double span_us = std::atof(argv[1]);
    const double interval_ms = std::atof(argv[2]);
    const double confidence = argc > 3 ? std::atof(argv[3]) : 0.75;
    if (span_us <= 0.0 || interval_ms <= 0.0 || confidence <= 0.0 ||
        confidence >= 1.0) {
        std::fprintf(stderr, "arguments out of range\n");
        return 2;
    }
    const auto f = static_cast<TimeNs>(span_us * 1e3);
    const auto s = static_cast<TimeNs>(interval_ms * 1e6);
    if (f > s) {
        std::printf("span exceeds the interval: one run suffices "
                    "(C = 1).\n");
        return 0;
    }
    const int n =
        hwcount::SamplingDriver::runsForCapture(f, s, confidence);
    std::printf("f = %.0f us, s = %.1f ms, target C = %.0f%%\n", span_us,
                interval_ms, 100.0 * confidence);
    std::printf("runs needed: %d\n", n);
    for (const int k : {1, 5, 10, n}) {
        std::printf("  C(%2d runs) = %.4f\n", k,
                    hwcount::SamplingDriver::captureProbability(f, s, k));
    }
    return 0;
}
