/**
 * @file
 * lotus_viz — the paper's visualization_augmenter.py analogue.
 *
 *   lotus_viz <trace.lotustrace> <out.json> [--fine]
 *             [--augment existing_profiler_trace.json]
 *
 * Converts a LotusTrace log into a Chrome Trace Viewer document
 * (coarse batch-level spans, or batch + per-op with --fine), with the
 * preprocessed -> consumed flow arrows. With --augment, the events of
 * an existing framework-profiler trace are carried through untouched
 * and the Lotus events are merged in under negative synthetic ids
 * (paper §III-C).
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/lotustrace/visualize.h"
#include "trace/chrome_reader.h"
#include "trace/logger.h"

int
main(int argc, char **argv)
{
    using namespace lotus;
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s <trace.lotustrace> <out.json> [--fine] "
                     "[--augment existing.json]\n",
                     argv[0]);
        return 2;
    }
    const std::string in_path = argv[1];
    const std::string out_path = argv[2];
    core::lotustrace::VisualizeOptions options;
    std::string augment_path;
    for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fine") == 0) {
            options.per_op = true;
        } else if (std::strcmp(argv[i], "--augment") == 0 &&
                   i + 1 < argc) {
            augment_path = argv[++i];
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            return 2;
        }
    }

    const auto records = trace::TraceLogger::readFrom(in_path);
    trace::ChromeTraceBuilder builder;
    if (!augment_path.empty()) {
        const auto existing =
            trace::readChromeTraceFile(augment_path);
        for (const auto &event : existing)
            builder.addRaw(event);
        std::printf("carried %zu events from %s\n", existing.size(),
                    augment_path.c_str());
    }
    core::lotustrace::augmentTrace(builder, records, options);
    const auto bytes = builder.writeTo(out_path);
    std::printf("wrote %s (%llu bytes, %zu events) — open in "
                "chrome://tracing\n",
                out_path.c_str(), static_cast<unsigned long long>(bytes),
                builder.events().size());
    return 0;
}
