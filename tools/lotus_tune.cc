/**
 * @file
 * lotus_tune — offline replay of the self-driving pipeline tuner.
 *
 * Feeds captured telemetry through the same bottleneck model the
 * online controller (src/tuner/) runs at epoch boundaries, so a
 * stalled production run can be diagnosed — and the tuner's verdict
 * sanity-checked — without re-running the pipeline:
 *
 *   lotus_tune <metrics.json>             # one dump = one interval
 *   lotus_tune <older.json> <newer.json>  # diff two reporter dumps
 *   lotus_tune <run.trace.json>           # replay a Chrome trace
 *   lotus_tune --sweep                    # recommendation vs optimum
 *
 * The two-dump form exercises metrics::diff's reset handling: dumps
 * straddling a registry reset still replay (the delta is the
 * post-reset value). --sweep runs a small heavy-tailed config sweep
 * live, lets the tuner converge from a deliberately bad start, and
 * prints its recommendation next to the measured optimum.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/files.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "dataflow/read_ahead.h"
#include "metrics/metrics.h"
#include "metrics/snapshot.h"
#include "pipeline/collate.h"
#include "trace/chrome_reader.h"
#include "tuner/replay.h"
#include "tuner/tuner.h"
#include "workloads/synthetic.h"

namespace {

using namespace lotus;
using dataflow::LoaderReconfig;
using dataflow::Schedule;
using tuner::PipelineTuner;
using tuner::TunerDecision;
using tuner::TunerOptions;
using tuner::TunerSignals;

std::string
formatConfig(const LoaderReconfig &config)
{
    return strFormat(
        "%dw pf%d %s ra%d:%d", config.num_workers,
        config.prefetch_factor,
        config.schedule == Schedule::kWorkStealing ? "ws" : "rr",
        config.read_ahead_depth, config.io_threads);
}

void
printSignals(const TunerSignals &signals)
{
    std::printf("signals over %.3fs:\n", signals.interval_s);
    std::printf("  batches %.0f  (ooo %.0f, ratio %.2f)\n",
                signals.batches, signals.ooo_batches,
                signals.oooRatio());
    std::printf("  consumer wait %.3fs   fetch busy %.3fs "
                "(%d workers observed)\n",
                signals.wait_s, signals.fetch_busy_s,
                signals.observed_workers);
    std::printf("  store reads %.0f totalling %.3fs (%.0f%% of busy)   "
                "collate %.3fs\n",
                signals.store_reads, signals.store_read_s,
                signals.storeFraction() * 100.0, signals.collate_s);
    std::printf("  read-ahead hits %.0f / misses %.0f (miss ratio "
                "%.2f)\n",
                signals.readahead_hits, signals.readahead_misses,
                signals.missRatio());
}

int
replay(const TunerSignals &signals, const LoaderReconfig &initial)
{
    printSignals(signals);
    PipelineTuner tuner(initial, TunerOptions{});
    const TunerDecision decision = tuner.decide(signals);
    std::printf("\nbottleneck: %s\n",
                tuner::bottleneckName(decision.bottleneck));
    std::printf("model: %s\n", decision.reason.c_str());
    std::printf("observed config (best guess): %s\n",
                formatConfig(initial).c_str());
    std::printf("recommended config: %s%s\n",
                formatConfig(decision.config).c_str(),
                decision.changed ? "" : " (no change)");
    return 0;
}

/** The dump cannot say how the run was configured; reconstruct what
 *  the telemetry reveals (worker series, read-ahead depth gauge) and
 *  default the rest, so "recommended" diffs against something real. */
LoaderReconfig
initialFromSnapshot(const metrics::Snapshot &snapshot,
                    const TunerSignals &signals)
{
    LoaderReconfig initial;
    initial.num_workers =
        signals.observed_workers > 0 ? signals.observed_workers : 1;
    const auto depth =
        snapshot.gauges.find(dataflow::kReadAheadDepthMetric);
    if (depth != snapshot.gauges.end() && depth->second > 0) {
        initial.read_ahead_depth = static_cast<int>(depth->second);
        initial.io_threads = 2;
    }
    return initial;
}

int
replayMetricsDump(const std::string &older_path,
                  const std::string &newer_path)
{
    metrics::Snapshot delta;
    if (older_path.empty()) {
        // One dump: the whole run is the interval.
        delta = tuner::snapshotFromMetricsJson(readFile(newer_path));
    } else {
        const metrics::Snapshot older =
            tuner::snapshotFromMetricsJson(readFile(older_path));
        const metrics::Snapshot newer =
            tuner::snapshotFromMetricsJson(readFile(newer_path));
        delta = metrics::diff(newer, older);
    }
    const TunerSignals signals = tuner::signalsFromSnapshot(delta);
    return replay(signals, initialFromSnapshot(delta, signals));
}

int
replayChromeTrace(const std::string &json)
{
    const std::vector<trace::ChromeEvent> events =
        trace::parseChromeTrace(json);
    const TunerSignals signals = tuner::signalsFromChromeEvents(events);
    LoaderReconfig initial;
    initial.num_workers =
        signals.observed_workers > 0 ? signals.observed_workers : 1;
    return replay(signals, initial);
}

// --- --sweep: live convergence vs a measured optimum ---------------

std::shared_ptr<workloads::HeavyTailCostDataset>
sweepDataset()
{
    workloads::HeavyTailCostConfig cost;
    cost.median_cost = 200 * kMicrosecond;
    cost.straggler_fraction = 0.05;
    cost.straggler_multiplier = 10.0;
    return std::make_shared<workloads::HeavyTailCostDataset>(64, cost);
}

double
epochWallSec(dataflow::DataLoader &loader)
{
    const auto begin = std::chrono::steady_clock::now();
    loader.startEpoch();
    while (loader.next().has_value()) {
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - begin)
        .count();
}

dataflow::DataLoaderOptions
sweepOptions(const LoaderReconfig &config)
{
    dataflow::DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = config.num_workers;
    options.prefetch_factor = config.prefetch_factor;
    options.schedule = config.schedule;
    options.read_ahead_depth = config.read_ahead_depth;
    options.io_threads = config.io_threads;
    return options;
}

double
measureConfig(const LoaderReconfig &config)
{
    dataflow::DataLoader loader(
        sweepDataset(), std::make_shared<pipeline::StackCollate>(),
        sweepOptions(config));
    epochWallSec(loader); // warm-up epoch
    return epochWallSec(loader);
}

int
sweep()
{
    metrics::ScopedEnable enable;
    metrics::MetricsRegistry::instance().reset();

    std::vector<LoaderReconfig> grid;
    for (const int workers : {1, 2, 4}) {
        for (const Schedule schedule :
             {Schedule::kRoundRobin, Schedule::kWorkStealing}) {
            if (workers == 1 && schedule == Schedule::kWorkStealing)
                continue; // stealing needs peers
            LoaderReconfig config;
            config.num_workers = workers;
            config.prefetch_factor = 2;
            config.schedule = schedule;
            grid.push_back(config);
        }
    }

    std::printf("%-18s %10s\n", "config", "epoch wall");
    double best_s = 0.0;
    LoaderReconfig best;
    for (const LoaderReconfig &config : grid) {
        const double wall_s = measureConfig(config);
        std::printf("%-18s %8.1fms\n", formatConfig(config).c_str(),
                    wall_s * 1e3);
        if (best_s == 0.0 || wall_s < best_s) {
            best_s = wall_s;
            best = config;
        }
    }

    // Let the controller converge live from the worst seat in the
    // house: one worker, no pipelining, round-robin.
    metrics::MetricsRegistry::instance().reset();
    LoaderReconfig start;
    start.num_workers = 1;
    start.prefetch_factor = 1;
    dataflow::DataLoader loader(
        sweepDataset(), std::make_shared<pipeline::StackCollate>(),
        sweepOptions(start));
    TunerOptions tuner_options;
    tuner_options.max_workers = 4;
    PipelineTuner tuner(start, tuner_options);
    auto &registry = metrics::MetricsRegistry::instance();
    tuner.onEpochEnd(registry.snapshot()); // baseline
    TunerDecision decision;
    for (int epoch = 0; epoch < 4; ++epoch) {
        epochWallSec(loader);
        decision = tuner.onEpochEnd(registry.snapshot());
        if (decision.changed)
            loader.reconfigure(decision.config);
        else if (epoch > 0)
            break; // converged
    }
    const LoaderReconfig recommended = tuner.config();
    const double recommended_s = measureConfig(recommended);

    std::printf("\nmodel: %s\n", decision.reason.c_str());
    std::printf("tuner recommendation: %s  -> measured %.1fms\n",
                formatConfig(recommended).c_str(), recommended_s * 1e3);
    std::printf("measured optimum:     %s  -> measured %.1fms\n",
                formatConfig(best).c_str(), best_s * 1e3);
    std::printf("recommendation is %+.1f%% vs optimum\n",
                (recommended_s / best_s - 1.0) * 100.0);
    return 0;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: lotus_tune <metrics.json>             # one dump\n"
        "       lotus_tune <older.json> <newer.json>  # diff dumps\n"
        "       lotus_tune <run.trace.json>           # Chrome trace\n"
        "       lotus_tune --sweep                    # live sweep\n"
        "\n"
        "Replays captured telemetry through the lotus::tuner\n"
        "bottleneck model and prints its recommendation.\n");
    return 1;
}

/** A document with traceEvents (or a bare array) is a Chrome trace;
 *  anything else is a metrics-reporter dump. */
bool
looksLikeChromeTrace(const std::string &json)
{
    const trace::detail::JsonValue doc = trace::detail::parseJson(json);
    if (doc.kind == trace::detail::JsonValue::Kind::Array)
        return true;
    return doc.kind == trace::detail::JsonValue::Kind::Object &&
           doc.find("traceEvents") != nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sweep") == 0)
            return sweep();
        if (argv[i][0] == '-')
            return usage();
        paths.push_back(argv[i]);
    }
    if (paths.empty() || paths.size() > 2)
        return usage();
    for (const std::string &path : paths) {
        if (!fileExists(path)) {
            std::fprintf(stderr, "lotus_tune: %s does not exist\n",
                         path.c_str());
            return 1;
        }
    }
    if (paths.size() == 2)
        return replayMetricsDump(paths[0], paths[1]);
    const std::string json = readFile(paths[0]);
    if (looksLikeChromeTrace(json))
        return replayChromeTrace(json);
    return replayMetricsDump("", paths[0]);
}
