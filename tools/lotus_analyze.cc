/**
 * @file
 * lotus_analyze — automated analysis of a LotusTrace log file.
 *
 *   lotus_analyze <trace.lotustrace> [--table2]
 *
 * Prints the bottleneck report (regime, findings, recommendations);
 * with --table2, also prints the per-op elapsed-time table in the
 * paper's Table II format.
 */

#include <cstdio>
#include <cstring>

#include "analysis/table.h"
#include "common/strings.h"
#include "core/lotustrace/analysis.h"
#include "core/lotustrace/report.h"
#include "trace/logger.h"

int
main(int argc, char **argv)
{
    using namespace lotus;
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <trace.lotustrace> [--table2]\n", argv[0]);
        return 2;
    }
    const std::string path = argv[1];
    const bool want_table2 =
        argc > 2 && std::strcmp(argv[2], "--table2") == 0;

    const auto records = trace::TraceLogger::readFrom(path);
    std::printf("%zu records from %s\n\n", records.size(), path.c_str());

    const auto report = core::lotustrace::buildReport(records);
    std::printf("%s", report.render().c_str());

    if (want_table2) {
        core::lotustrace::TraceAnalysis analysis(records);
        analysis::TextTable table(
            {"op", "avg ms", "P90 ms", "<10ms", "<100us"});
        for (const auto &op : analysis.opStats()) {
            table.addRow({op.name, strFormat("%.2f", op.summary_ms.mean),
                          strFormat("%.2f", op.summary_ms.p90),
                          strFormat("%.1f%%", 100.0 * op.frac_below_10ms),
                          strFormat("%.1f%%",
                                    100.0 * op.frac_below_100us)});
        }
        std::printf("\nper-op elapsed time (Table II format):\n%s",
                    table.render().c_str());
    }
    return 0;
}
