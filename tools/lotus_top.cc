/**
 * @file
 * lotus_top — live view of a running (or finished) Lotus pipeline.
 *
 * Reads the JSON endpoint file a metrics::MetricsReporter publishes
 * (atomically replaced every tick) and renders a refreshing
 * per-worker / per-op table: batch throughput, main-process stall
 * ratio, queue depths, fetch/op latency quantiles and decode-path hit
 * rates. A stalled pipeline becomes diagnosable without replaying a
 * Chrome trace.
 *
 * Usage:
 *   lotus_top <metrics.json>                 # refresh until Ctrl-C
 *   lotus_top --once <metrics.json>          # render one frame
 *   lotus_top --interval-ms 500 <file.json>  # custom refresh period
 *   lotus_top --demo                         # built-in synthetic run
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/files.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "dataflow/read_ahead.h"
#include "hwcount/thread_counters.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "metrics/export.h"
#include "metrics/metrics.h"
#include "metrics/reporter.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/dataset.h"
#include "pipeline/image_folder.h"
#include "pipeline/remote_store.h"
#include "pipeline/store.h"
#include "pipeline/traced_store.h"
#include "pipeline/transforms/vision.h"
#include "service/loader_client.h"
#include "service/preproc_server.h"
#include "trace/chrome_reader.h"
#include "tuner/tuner.h"

namespace {

using namespace lotus;
using trace::detail::JsonValue;

/** Human-readable nanoseconds. */
std::string
formatNs(double ns)
{
    if (ns < 1e3)
        return strFormat("%.0fns", ns);
    if (ns < 1e6)
        return strFormat("%.1fus", ns / 1e3);
    if (ns < 1e9)
        return strFormat("%.1fms", ns / 1e6);
    return strFormat("%.2fs", ns / 1e9);
}

double
numberField(const JsonValue &object, const char *key, double fallback = 0.0)
{
    const JsonValue *value = object.find(key);
    if (value == nullptr || value->kind != JsonValue::Kind::Number)
        return fallback;
    return value->number;
}

double
rateFor(const JsonValue &document, const std::string &name)
{
    const JsonValue *rates = document.find("rates");
    if (rates == nullptr)
        return 0.0;
    return numberField(*rates, name.c_str());
}

void
render(const JsonValue &document, const std::string &source)
{
    const int schema = static_cast<int>(
        numberField(document, "schema_version", -1));
    if (schema != metrics::kJsonSchemaVersion) {
        std::printf("lotus_top: unsupported schema_version %d in %s "
                    "(expected %d)\n",
                    schema, source.c_str(), metrics::kJsonSchemaVersion);
        return;
    }
    const double interval_ns = numberField(document, "interval_ns");

    std::printf("lotus_top — %s  (interval %s)\n", source.c_str(),
                formatNs(interval_ns).c_str());

    // Headline: throughput and main-process stall ratio.
    const JsonValue *counters = document.find("counters");
    const double batch_rate =
        rateFor(document, "lotus_loader_batches_total");
    const double wait_rate =
        rateFor(document, "lotus_loader_wait_ns_total");
    // Wait-ns per wall-second; short final ticks can overshoot 100%.
    const double stall_pct =
        std::min(100.0, wait_rate / 1e9 * 100.0);
    std::printf("  batches/s %.1f   main-process stall %.1f%%   "
                "decode fast/ref %.0f/%.0f\n",
                batch_rate, stall_pct,
                counters != nullptr
                    ? numberField(*counters,
                                  "lotus_codec_decode_fast_total")
                    : 0.0,
                counters != nullptr
                    ? numberField(*counters,
                                  "lotus_codec_decode_reference_total")
                    : 0.0);

    // Buffer-pool headline: how well the sample path recycles
    // allocations (steady-state epochs should be all hits).
    const JsonValue *gauges = document.find("gauges");
    const double pool_hits =
        counters != nullptr
            ? numberField(*counters, "lotus_pool_hits_total")
            : 0.0;
    const double pool_misses =
        counters != nullptr
            ? numberField(*counters, "lotus_pool_misses_total")
            : 0.0;
    const double pool_bytes =
        gauges != nullptr ? numberField(*gauges, "lotus_pool_bytes") : 0.0;
    const double pool_requests = pool_hits + pool_misses;
    std::printf("  pool hit %.1f%%  (%.0f hits / %.0f misses)   "
                "pool cached %.1f MiB\n",
                pool_requests > 0 ? pool_hits / pool_requests * 100.0
                                  : 0.0,
                pool_hits, pool_misses, pool_bytes / (1024.0 * 1024.0));

    // Sample-error headline: sum the per-{policy,stage} series of
    // lotus_loader_sample_errors_total. Nonzero means the campaign is
    // skipping/retrying bad records — worth noticing even when the
    // pipeline keeps running.
    double error_total = 0.0, error_rate = 0.0;
    if (counters != nullptr) {
        for (const auto &[name, value] : counters->object) {
            if (name.rfind(dataflow::kSampleErrorsMetric, 0) == 0) {
                error_total += value.number;
                error_rate += rateFor(document, name);
            }
        }
    }
    std::printf("  sample errors %.0f  (%.1f/s)\n", error_total,
                error_rate);

    // Work-stealing headline: per-sample tasks executed and the share
    // a peer stole (sum of the per-thief lotus_loader_steals_total
    // series). All zeros under the round-robin schedule.
    double steals_total = 0.0, steal_rate = 0.0;
    if (counters != nullptr) {
        for (const auto &[name, value] : counters->object) {
            if (name.rfind(dataflow::kStealsMetric, 0) == 0) {
                steals_total += value.number;
                steal_rate += rateFor(document, name);
            }
        }
    }
    const double tasks_total =
        counters != nullptr
            ? numberField(*counters, dataflow::kTasksMetric)
            : 0.0;
    std::printf("  steals %.0f / %.0f tasks  (%.1f%% stolen, %.1f/s)\n",
                steals_total, tasks_total,
                tasks_total > 0 ? steals_total / tasks_total * 100.0
                                : 0.0,
                steal_rate);

    // Decoded-sample cache headline: warm epochs should show hit
    // rates near 100% and a byte level tracking the budget; nonzero
    // corrupt counts mean spill files failed validation (recovered by
    // re-decoding). All zeros when CachePolicy::kNone.
    const double cache_hits =
        counters != nullptr
            ? numberField(*counters, "lotus_cache_hits_total")
            : 0.0;
    const double cache_misses =
        counters != nullptr
            ? numberField(*counters, "lotus_cache_misses_total")
            : 0.0;
    const double cache_lookups = cache_hits + cache_misses;
    const double cache_bytes =
        gauges != nullptr ? numberField(*gauges, "lotus_cache_bytes")
                          : 0.0;
    std::printf("  cache hit %.1f%%  (%.0f hits / %.0f misses)   "
                "resident %.1f MiB   evictions %.0f\n",
                cache_lookups > 0 ? cache_hits / cache_lookups * 100.0
                                  : 0.0,
                cache_hits, cache_misses,
                cache_bytes / (1024.0 * 1024.0),
                counters != nullptr
                    ? numberField(*counters,
                                  "lotus_cache_evictions_total")
                    : 0.0);
    std::printf("  cache disk: hits %.0f  spills %.0f  corrupt %.0f\n",
                counters != nullptr
                    ? numberField(*counters,
                                  "lotus_cache_disk_hits_total")
                    : 0.0,
                counters != nullptr
                    ? numberField(*counters, "lotus_cache_spills_total")
                    : 0.0,
                counters != nullptr
                    ? numberField(*counters, "lotus_cache_corrupt_total")
                    : 0.0);

    // Read-ahead headline: how much of the epoch's store I/O the
    // prefetch window absorbed (hits) vs claims that outran the
    // issuers and fell back to synchronous reads (misses), plus the
    // live window occupancy against its configured depth. All zeros
    // when read_ahead_depth is off.
    const double ra_hits =
        counters != nullptr
            ? numberField(*counters, dataflow::kReadAheadHitsMetric)
            : 0.0;
    const double ra_misses =
        counters != nullptr
            ? numberField(*counters, dataflow::kReadAheadMissesMetric)
            : 0.0;
    const double ra_claims = ra_hits + ra_misses;
    std::printf("  read-ahead hit %.1f%%  (%.0f hits / %.0f misses)   "
                "window %.0f/%.0f   issued %.0f (%.1f/s)\n",
                ra_claims > 0 ? ra_hits / ra_claims * 100.0 : 0.0,
                ra_hits, ra_misses,
                gauges != nullptr
                    ? numberField(*gauges,
                                  dataflow::kReadAheadInFlightMetric)
                    : 0.0,
                gauges != nullptr
                    ? numberField(*gauges,
                                  dataflow::kReadAheadDepthMetric)
                    : 0.0,
                counters != nullptr
                    ? numberField(*counters,
                                  dataflow::kReadAheadIssuedMetric)
                    : 0.0,
                rateFor(document, dataflow::kReadAheadIssuedMetric));

    // Hardware-counter headline: measured per-thread PMU deltas over
    // fetch spans (lotus_pmu_*). All-zero counters mean the run used
    // the simulated backend (or attribution was off) — say so rather
    // than print a meaningless 0.00 IPC.
    const double pmu_cycles =
        counters != nullptr
            ? numberField(*counters, dataflow::kPmuCyclesMetric)
            : 0.0;
    const double pmu_instructions =
        counters != nullptr
            ? numberField(*counters, dataflow::kPmuInstructionsMetric)
            : 0.0;
    const double pmu_llc =
        counters != nullptr
            ? numberField(*counters, dataflow::kPmuLlcMissesMetric)
            : 0.0;
    if (pmu_cycles > 0 && pmu_instructions > 0) {
        std::printf("  pmu: IPC %.2f   LLC miss %.2f/kinst   "
                    "(%.0fM cycles measured)\n",
                    pmu_instructions / pmu_cycles,
                    pmu_llc / pmu_instructions * 1e3, pmu_cycles / 1e6);
    } else {
        std::printf("  pmu: simulated/off (no measured counters)\n");
    }

    // Store-I/O headline from the TracedStore histograms: read count,
    // latency quantiles and total bytes delivered. All zeros when the
    // run used an untraced store.
    const JsonValue *histograms = document.find("histograms");
    const JsonValue *read_ns =
        histograms != nullptr
            ? histograms->find(pipeline::kStoreReadNsMetric)
            : nullptr;
    const JsonValue *read_bytes =
        histograms != nullptr
            ? histograms->find(pipeline::kStoreReadBytesMetric)
            : nullptr;
    const double store_reads =
        read_ns != nullptr ? numberField(*read_ns, "count") : 0.0;
    std::printf("  store reads %.0f  (%.1f/s)   p50 %s  p99 %s   "
                "%.1f MiB read\n",
                store_reads,
                rateFor(document, pipeline::kStoreReadNsMetric),
                read_ns != nullptr
                    ? formatNs(numberField(*read_ns, "p50")).c_str()
                    : "-",
                read_ns != nullptr
                    ? formatNs(numberField(*read_ns, "p99")).c_str()
                    : "-",
                (read_bytes != nullptr ? numberField(*read_bytes, "sum")
                                       : 0.0) /
                    (1024.0 * 1024.0));

    // Tuner headline: the controller's last bottleneck verdict and
    // the config it decided on (see src/tuner/). "idle" until the
    // first onEpochEnd() decision of the run publishes the gauges.
    const double tuner_decisions =
        counters != nullptr
            ? numberField(*counters, tuner::kTunerDecisionsMetric)
            : 0.0;
    if (tuner_decisions > 0 && gauges != nullptr) {
        const auto verdict = static_cast<tuner::Bottleneck>(
            static_cast<int>(
                numberField(*gauges, tuner::kTunerBottleneckMetric)));
        const bool stealing =
            numberField(*gauges, tuner::kTunerScheduleMetric) != 0.0;
        std::printf(
            "  tuner: %s   workers %.0f  prefetch %.0f  %s  "
            "read-ahead %.0f   (%.0f decisions, %.0f changes)\n",
            tuner::bottleneckName(verdict),
            numberField(*gauges, tuner::kTunerWorkersMetric),
            numberField(*gauges, tuner::kTunerPrefetchMetric),
            stealing ? "work-stealing" : "round-robin",
            numberField(*gauges, tuner::kTunerReadAheadDepthMetric),
            tuner_decisions,
            numberField(*counters, tuner::kTunerChangesMetric));
    } else {
        std::printf("  tuner: idle (no decisions this run)\n");
    }

    // Multi-tenant service panel: one row per connected client, fed
    // by the lotus_service_* per-client series. Absent entirely when
    // no PreprocServer ran.
    struct ClientRow
    {
        long long id = 0;
        double tasks = 0.0;
        double rate = 0.0;
        double queue_depth = 0.0;
        double wait_p99 = 0.0;
    };
    std::vector<ClientRow> clients;
    double service_tasks_total = 0.0;
    if (counters != nullptr) {
        for (const auto &[name, value] : counters->object) {
            if (name.rfind(service::kServiceTasksMetric, 0) != 0)
                continue;
            const std::string id = metrics::labelValue(name, "client");
            if (id.empty())
                continue;
            ClientRow row;
            row.id = std::atoll(id.c_str());
            row.tasks = value.number;
            row.rate = rateFor(document, name);
            service_tasks_total += row.tasks;
            if (gauges != nullptr)
                row.queue_depth = numberField(
                    *gauges,
                    metrics::labeled(service::kServiceQueueDepthMetric,
                                     "client", id)
                        .c_str());
            if (histograms != nullptr) {
                const JsonValue *wait = histograms->find(
                    metrics::labeled(service::kServiceWaitNsMetric,
                                     "client", id));
                if (wait != nullptr)
                    row.wait_p99 = numberField(*wait, "p99");
            }
            clients.push_back(row);
        }
    }
    if (!clients.empty()) {
        std::sort(clients.begin(), clients.end(),
                  [](const ClientRow &a, const ClientRow &b) {
                      return a.id < b.id;
                  });
        const double live =
            gauges != nullptr
                ? numberField(*gauges, service::kServiceClientsMetric)
                : 0.0;
        const double rejected =
            counters != nullptr
                ? numberField(*counters, service::kServiceRejectedMetric)
                : 0.0;
        std::printf("\n  service: %.0f clients connected, %.0f rejected\n",
                    live, rejected);
        std::printf("  %-8s %12s %12s %8s %10s %8s\n", "client",
                    "samples", "samples/s", "queue", "t2_p99", "share");
        for (const ClientRow &row : clients)
            std::printf("  %-8lld %12.0f %12.1f %8.0f %10s %7.1f%%\n",
                        row.id, row.tasks, row.rate, row.queue_depth,
                        formatNs(row.wait_p99).c_str(),
                        service_tasks_total > 0
                            ? row.tasks / service_tasks_total * 100.0
                            : 0.0);
    }

    if (gauges != nullptr && !gauges->object.empty()) {
        std::printf("\n  %-44s %10s\n", "gauge", "value");
        for (const auto &[name, value] : gauges->object)
            std::printf("  %-44s %10.0f\n", name.c_str(), value.number);
    }

    if (counters != nullptr && !counters->object.empty()) {
        std::printf("\n  %-44s %12s %10s\n", "counter", "total", "rate/s");
        for (const auto &[name, value] : counters->object)
            std::printf("  %-44s %12.0f %10.1f\n", name.c_str(),
                        value.number, rateFor(document, name));
    }

    if (histograms != nullptr && !histograms->object.empty()) {
        std::printf("\n  %-44s %8s %8s %9s %9s %9s %9s\n", "histogram",
                    "count", "rate/s", "mean", "p50", "p90", "p99");
        for (const auto &[name, hist] : histograms->object) {
            const double count = numberField(hist, "count");
            const double mean =
                count > 0 ? numberField(hist, "sum") / count : 0.0;
            std::printf(
                "  %-44s %8.0f %8.1f %9s %9s %9s %9s\n", name.c_str(),
                count, rateFor(document, name), formatNs(mean).c_str(),
                formatNs(numberField(hist, "p50")).c_str(),
                formatNs(numberField(hist, "p90")).c_str(),
                formatNs(numberField(hist, "p99")).c_str());
        }
    }
    std::fflush(stdout);
}

int
watch(const std::string &path, bool once, int interval_ms)
{
    for (;;) {
        if (!fileExists(path)) {
            std::fprintf(stderr, "lotus_top: %s does not exist (yet?)\n",
                         path.c_str());
            if (once)
                return 1;
        } else {
            if (!once)
                std::printf("\033[2J\033[H"); // clear + home
            render(trace::detail::parseJson(readFile(path)), path);
        }
        if (once)
            return 0;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
}

/**
 * Demo dataset: synthesized encoded images through a cacheable
 * Resize -> Flip -> ToTensor chain, so --demo exercises the whole
 * stack — decode, transforms, the decoded-sample cache (epoch 2 runs
 * warm), pools, and the metrics endpoint.
 */
std::shared_ptr<pipeline::ImageFolderDataset>
demoDataset()
{
    auto blobs = std::make_shared<pipeline::InMemoryStore>();
    Rng rng(77);
    for (int i = 0; i < 96; ++i)
        blobs->add(image::codec::encode(image::synthesize(rng, 64, 64)));
    // Model a mild remote round trip so the read-ahead stage has real
    // latency to hide, and trace every read so the store-I/O headline
    // shows live numbers.
    pipeline::RemoteStoreOptions remote_options;
    remote_options.rtt = 200 * kMicrosecond;
    auto store = std::make_shared<pipeline::TracedStore>(
        std::make_shared<pipeline::RemoteStore>(std::move(blobs),
                                                remote_options));

    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(std::make_unique<pipeline::Resize>(
        /*size=*/48, /*max_size=*/0, /*exact=*/true));
    transforms.push_back(
        std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::make_shared<const pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/10);
}

int
demo()
{
    metrics::ScopedEnable enable;
    // Try to measure real counters for the pmu headline; degrades to
    // the "simulated/off" line when the sandbox denies perf_event.
    hwcount::ThreadCounterRegistry::instance().setEnabled(true);
    const TempDir dir("lotus_top_demo");
    const std::string endpoint = dir.file("metrics.json");

    metrics::MetricsReporterOptions reporter_options;
    reporter_options.interval = 50 * kMillisecond;
    reporter_options.json_path = endpoint;

    {
        metrics::MetricsReporter reporter(reporter_options);
        dataflow::DataLoaderOptions options;
        options.batch_size = 8;
        options.num_workers = 4;
        options.cache_policy = dataflow::CachePolicy::kMemory;
        options.cache_budget_bytes = 64ll << 20;
        options.read_ahead_depth = 16;
        options.io_threads = 2;
        dataflow::DataLoader loader(
            demoDataset(), std::make_shared<pipeline::StackCollate>(),
            options);
        // Two epochs: the first fills the cache, the second runs warm
        // so the headline shows a live hit rate.
        for (int epoch = 0; epoch < 2; ++epoch) {
            loader.startEpoch();
            while (loader.next().has_value()) {
            }
        }

        // Two tenants on one shared fleet, so the per-client service
        // panel renders live rows (ids, rates, [T2] p99, steal share).
        service::PreprocServer server({.num_workers = 4});
        auto first =
            server
                .connect(demoDataset(),
                         std::make_shared<pipeline::StackCollate>(),
                         {.batch_size = 8, .shuffle = true, .seed = 1})
                .take();
        auto second =
            server
                .connect(demoDataset(),
                         std::make_shared<pipeline::StackCollate>(),
                         {.batch_size = 4,
                          .shuffle = true,
                          .seed = 2,
                          .weight = 2.0})
                .take();
        std::thread second_driver([&second] {
            while (second->next().has_value()) {
            }
        });
        while (first->next().has_value()) {
        }
        second_driver.join();
    } // reporter destructor publishes the final tick

    return watch(endpoint, /*once=*/true, /*interval_ms=*/0);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: lotus_top [--once] [--interval-ms N] "
                 "<metrics.json>\n"
                 "       lotus_top --demo\n"
                 "\n"
                 "Renders the JSON endpoint file written by "
                 "lotus::metrics::MetricsReporter.\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool once = false;
    int interval_ms = 1000;
    std::string path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--demo") == 0)
            return demo();
        if (std::strcmp(argv[i], "--once") == 0) {
            once = true;
        } else if (std::strcmp(argv[i], "--interval-ms") == 0 &&
                   i + 1 < argc) {
            interval_ms = std::atoi(argv[++i]);
            if (interval_ms <= 0)
                return usage();
        } else if (argv[i][0] == '-') {
            return usage();
        } else {
            path = argv[i];
        }
    }
    if (path.empty())
        return usage();
    return watch(path, once, interval_ms);
}
