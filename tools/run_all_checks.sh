#!/usr/bin/env bash
#
# Pre-merge gate: run every check tier in sequence and print one
# summary. This is the command to run before merging a change — it is
# exactly what CI runs, in the same order:
#
#   1. tier-1: default build (build/) + full ctest suite
#   2. TSan:   tools/run_tsan.sh        (build-tsan/, concurrency suites)
#   3. ASan:   tools/run_sanitizers.sh  (build-asan/, +UBSan, memory suites)
#
#   tools/run_all_checks.sh              # all three tiers
#   BUILD_DIR=out tools/run_all_checks.sh  # relocate the tier-1 build only
#
# Each tier runs even if an earlier one failed (so one pass reports
# every broken tier, not just the first); the exit code is non-zero if
# any tier failed.

set -uo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"

declare -a NAMES=() RESULTS=()

run_tier() {
    local name="$1"
    shift
    echo
    echo "==== ${name}: $* ===="
    if "$@"; then
        RESULTS+=("PASS")
    else
        RESULTS+=("FAIL")
    fi
    NAMES+=("${name}")
}

tier1() {
    cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" &&
        cmake --build "${BUILD_DIR}" -j "$(nproc)" &&
        ctest --test-dir "${BUILD_DIR}" --output-on-failure
}

run_tier "tier-1 (build + ctest)" tier1
run_tier "TSan" env BUILD_DIR="${REPO_ROOT}/build-tsan" \
    "${REPO_ROOT}/tools/run_tsan.sh"
run_tier "ASan/UBSan" env BUILD_DIR="${REPO_ROOT}/build-asan" \
    "${REPO_ROOT}/tools/run_sanitizers.sh"

echo
echo "==== summary ===="
status=0
for i in "${!NAMES[@]}"; do
    printf '  %-24s %s\n' "${NAMES[$i]}" "${RESULTS[$i]}"
    [[ "${RESULTS[$i]}" == "PASS" ]] || status=1
done
exit "${status}"
