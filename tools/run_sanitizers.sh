#!/usr/bin/env bash
#
# ASan+UBSan CI job: build with LOTUS_SANITIZE=address (which bundles
# UBSan, see the top-level CMakeLists.txt) and run the suites that
# chew on attacker-shaped or lifecycle-heavy inputs — the decoded-
# sample cache (spill-file parser, mmap reads, eviction recycling) and
# the fault-injection corruption sweeps — plus the image codec, whose
# decoder is the other untrusted-bytes surface.
#
#   tools/run_sanitizers.sh              # build into build-asan/ and run
#   BUILD_DIR=out tools/run_sanitizers.sh
#   tools/run_sanitizers.sh -R 'test_cache'   # extra args go to ctest
#
# The TSan counterpart is tools/run_tsan.sh.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-asan}"

# test_hwcount and test_trace joined for the PMU attribution and
# store-I/O trace paths (perf fd lifecycle, IoEvent round-trips).
# test_remote_store and test_read_ahead cover the staged-blob handoff
# and the prefetch window's entry lifecycle (move-outs, cancellation).
# test_tuner exercises reconfigure(): worker teardown/respawn and the
# build-then-swap read-ahead engine replacement between epochs.
# test_service covers the multi-tenant service's build lifecycle:
# canceled-epoch draining, disconnect reaping, and the reorder
# buffer's message move-outs.
ASAN_TESTS='test_cache|test_fault_injection|test_image_codec|test_dataflow|test_pipeline|test_hwcount|test_trace|test_remote_store|test_read_ahead|test_tuner|test_service$'

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
    -DLOTUS_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
    --target test_cache test_fault_injection test_image_codec \
             test_dataflow test_pipeline test_hwcount test_trace \
             test_remote_store test_read_ahead test_tuner \
             test_service

ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure \
          -R "${ASAN_TESTS}" "$@"
