#!/usr/bin/env bash
#
# ThreadSanitizer CI job: build with LOTUS_SANITIZE=thread and run the
# concurrency-sensitive test binaries — the lock-free metrics layer,
# the DataLoader protocol, and the trace logger — under TSan.
#
#   tools/run_tsan.sh              # build into build-tsan/ and run
#   BUILD_DIR=out tools/run_tsan.sh
#   tools/run_tsan.sh -R 'test_metrics'   # extra args go to ctest

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-tsan}"

# TSan-instrumented targets only; the full suite is the tier-1 job.
# test_cache is here for the multi-thread eviction hammer: every
# shard's CLOCK hand, free list and index churn under contention.
# test_hwcount covers the per-thread PMU attribution registry, whose
# snapshot()/charge() paths race against worker attach/detach.
# test_remote_store hammers the connection-slot gate from concurrent
# readers; test_read_ahead races issuers, claimers and cancellation.
# test_tuner drives epoch-boundary reconfiguration, which tears down
# and respawns the worker fleet and read-ahead engine between epochs.
# test_service runs N concurrent clients over one shared fleet:
# weighted-fair stealing, admission control, and disconnect draining
# all race client threads against fleet workers.
TSAN_TESTS='test_metrics|test_dataflow|test_cache|test_work_stealing|test_fault_injection|test_trace|test_pipeline|test_buffer_pool|test_hwcount|test_remote_store|test_read_ahead|test_tuner|test_service$'

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
    -DLOTUS_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j "$(nproc)" \
    --target test_metrics test_dataflow test_cache \
             test_work_stealing test_fault_injection test_trace \
             test_pipeline test_buffer_pool test_hwcount \
             test_remote_store test_read_ahead test_tuner \
             test_service

TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "${BUILD_DIR}" --output-on-failure \
          -R "${TSAN_TESTS}" "$@"
