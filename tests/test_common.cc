/**
 * @file
 * Unit tests for the common substrate: rng, strings, queue, files,
 * clocks, thread ids.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/clock.h"
#include "common/files.h"
#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_util.h"

namespace lotus {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(21);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsRoughlyCorrect)
{
    Rng rng(33);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal(5.0, 2.0);
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 5.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, LogNormalMatchesRequestedMoments)
{
    Rng rng(44);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.logNormalFromMoments(100.0, 50.0);
        EXPECT_GT(v, 0.0);
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / n;
    const double stddev = std::sqrt(sum_sq / n - mean * mean);
    EXPECT_NEAR(mean, 100.0, 2.0);
    EXPECT_NEAR(stddev, 50.0, 4.0);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(5);
    Rng child = parent.fork();
    // Child should not replay the parent's stream.
    Rng parent2(5);
    parent2.fork();
    EXPECT_EQ(child.nextU64(), Rng(Rng(5).nextU64()).nextU64());
    EXPECT_NE(child.nextU64(), parent.nextU64());
}

TEST(Strings, Format)
{
    EXPECT_EQ(strFormat("%d-%s", 5, "x"), "5-x");
    EXPECT_EQ(strFormat("empty"), "empty");
}

TEST(Strings, JoinAndSplit)
{
    EXPECT_EQ(strJoin({"a", "b", "c"}, ","), "a,b,c");
    EXPECT_EQ(strJoin({}, ","), "");
    const auto parts = strSplit("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_TRUE(strSplit("", ',').empty());
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(strStartsWith("lotus.log", "lotus"));
    EXPECT_FALSE(strStartsWith("lo", "lotus"));
    EXPECT_TRUE(strEndsWith("trace.json", ".json"));
    EXPECT_FALSE(strEndsWith("json", "trace.json"));
}

TEST(Strings, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(6 * 1024 * 1024 + 100 * 1024), "6.1 MB");
}

TEST(Clock, SteadyClockMonotonic)
{
    const auto &clock = SteadyClock::instance();
    const TimeNs a = clock.now();
    const TimeNs b = clock.now();
    EXPECT_LE(a, b);
}

TEST(Clock, VirtualClockAdvances)
{
    VirtualClock clock(100);
    EXPECT_EQ(clock.now(), 100);
    clock.advance(50);
    EXPECT_EQ(clock.now(), 150);
    clock.set(1000);
    EXPECT_EQ(clock.now(), 1000);
}

TEST(Clock, Conversions)
{
    EXPECT_DOUBLE_EQ(toMs(2 * kMillisecond), 2.0);
    EXPECT_DOUBLE_EQ(toUs(3 * kMicrosecond), 3.0);
    EXPECT_DOUBLE_EQ(toSec(kSecond), 1.0);
}

TEST(MpmcQueue, FifoSingleThread)
{
    MpmcQueue<int> queue;
    EXPECT_TRUE(queue.push(1));
    EXPECT_TRUE(queue.push(2));
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.pop().value(), 1);
    EXPECT_EQ(queue.pop().value(), 2);
    EXPECT_FALSE(queue.tryPop().has_value());
}

TEST(MpmcQueue, CloseDrainsThenEnds)
{
    MpmcQueue<int> queue;
    queue.push(7);
    queue.close();
    EXPECT_FALSE(queue.push(8));
    EXPECT_EQ(queue.pop().value(), 7);
    EXPECT_FALSE(queue.pop().has_value());
}

TEST(MpmcQueue, PopForTimesOut)
{
    MpmcQueue<int> queue;
    const auto result = queue.popFor(std::chrono::milliseconds(10));
    EXPECT_FALSE(result.has_value());
}

TEST(MpmcQueue, BlockingProducerConsumer)
{
    MpmcQueue<int> queue(2);
    std::vector<int> consumed;
    std::thread consumer([&] {
        for (;;) {
            auto v = queue.pop();
            if (!v.has_value())
                break;
            consumed.push_back(*v);
        }
    });
    for (int i = 0; i < 100; ++i)
        queue.push(i);
    queue.close();
    consumer.join();
    ASSERT_EQ(consumed.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(consumed[static_cast<std::size_t>(i)], i);
}

TEST(MpmcQueue, MultipleProducersAllDelivered)
{
    MpmcQueue<int> queue;
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&queue, p] {
            for (int i = 0; i < 50; ++i)
                queue.push(p * 1000 + i);
        });
    }
    for (auto &t : producers)
        t.join();
    std::multiset<int> got;
    for (int i = 0; i < 200; ++i)
        got.insert(queue.pop().value());
    EXPECT_EQ(got.size(), 200u);
    EXPECT_EQ(got.count(3 * 1000 + 49), 1u);
}

TEST(Files, WriteReadRoundtrip)
{
    TempDir dir("lotus-test");
    const std::string path = dir.file("blob.bin");
    const std::string payload = "hello\0world\x01\xff";
    writeFile(path, payload);
    EXPECT_TRUE(fileExists(path));
    EXPECT_EQ(readFile(path), payload);
    EXPECT_EQ(fileSize(path), payload.size());
}

TEST(Files, TempDirCleansUp)
{
    std::string path;
    {
        TempDir dir("lotus-test");
        path = dir.path();
        writeFile(dir.file("x"), "x");
        EXPECT_TRUE(fileExists(path));
    }
    EXPECT_FALSE(fileExists(path));
}

TEST(ThreadUtil, TidsStableAndDistinct)
{
    const auto main_tid = currentTid();
    EXPECT_EQ(main_tid, currentTid());
    std::uint32_t other = 0;
    std::thread t([&] { other = currentTid(); });
    t.join();
    EXPECT_NE(other, 0u);
    EXPECT_NE(other, main_tid);
}

TEST(ThreadUtil, ThreadNameRoundtrip)
{
    std::thread t([] {
        setCurrentThreadName("loader-3");
        EXPECT_EQ(currentThreadName(), "loader-3");
    });
    t.join();
}

} // namespace
} // namespace lotus
