/**
 * @file
 * Tests for the synthetic datasets and the three MLPerf-like
 * pipelines.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/files.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "image/codec/codec.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

namespace lotus::workloads {
namespace {

TEST(SyntheticImageNet, BlobsAreDecodableAndVaried)
{
    ImageNetConfig config;
    config.num_images = 12;
    config.median_width = 96;
    auto store = buildImageNetStore(config);
    ASSERT_EQ(store->size(), 12);
    std::uint64_t min_size = UINT64_MAX, max_size = 0;
    for (std::int64_t i = 0; i < store->size(); ++i) {
        const auto blob = store->read(i);
        const auto header = image::codec::peekHeader(blob);
        EXPECT_GE(header.width, 48);
        EXPECT_GE(header.height, 48);
        min_size = std::min(min_size, store->blobSize(i));
        max_size = std::max(max_size, store->blobSize(i));
    }
    // Heavy-tailed size spread (Takeaway 3's variance driver).
    EXPECT_GT(max_size, min_size * 2);
    // Decode one fully.
    const auto img = image::codec::decode(store->read(0));
    EXPECT_GT(img.width(), 0);
}

TEST(SyntheticImageNet, DeterministicPerSeed)
{
    ImageNetConfig config;
    config.num_images = 3;
    config.median_width = 64;
    auto a = buildImageNetStore(config);
    auto b = buildImageNetStore(config);
    for (std::int64_t i = 0; i < 3; ++i)
        EXPECT_EQ(a->read(i), b->read(i));
    config.seed = 99;
    auto c = buildImageNetStore(config);
    EXPECT_NE(a->read(0), c->read(0));
}

TEST(SyntheticKits19, VolumesHaveForeground)
{
    Kits19Config config;
    config.num_volumes = 3;
    config.median_extent = 24;
    auto store = buildKits19Store(config);
    for (std::int64_t i = 0; i < store->size(); ++i) {
        const auto volume = tensor::fromBytes(store->read(i));
        ASSERT_EQ(volume.rank(), 4u);
        EXPECT_EQ(volume.dim(0), 1);
        // Bright lesions exist (values > 200).
        const auto hits = tensor::foregroundSearch(volume, 200.0f, 10);
        EXPECT_FALSE(hits.empty());
    }
}

TEST(SyntheticCoco, LargerThanImageNetOnAverage)
{
    ImageNetConfig in_config;
    in_config.num_images = 8;
    in_config.median_width = 64;
    CocoConfig coco_config;
    coco_config.num_images = 8;
    coco_config.median_width = 128;
    auto imagenet = buildImageNetStore(in_config);
    auto coco = buildCocoStore(coco_config);
    EXPECT_GT(coco->totalBytes(), imagenet->totalBytes());
}

dataflow::DataLoaderOptions
quickOptions(int batch_size)
{
    dataflow::DataLoaderOptions options;
    options.batch_size = batch_size;
    options.num_workers = 2;
    return options;
}

TEST(Pipelines, ImageClassificationEndToEndShapes)
{
    ImageNetConfig config;
    config.num_images = 8;
    config.median_width = 72;
    auto workload = makeImageClassification(buildImageNetStore(config), 32);
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                quickOptions(4));
    auto batch = loader.next();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->data.shape(),
              (std::vector<std::int64_t>{4, 3, 32, 32}));
    EXPECT_EQ(batch->data.dtype(), tensor::DType::F32);
    // Normalized values: roughly centered, not raw [0, 1].
    double min_v = 1e9, max_v = -1e9;
    for (std::int64_t i = 0; i < batch->data.numel(); ++i) {
        min_v = std::min(min_v,
                         static_cast<double>(batch->data.data<float>()[i]));
        max_v = std::max(max_v,
                         static_cast<double>(batch->data.data<float>()[i]));
    }
    EXPECT_LT(min_v, 0.0);
    EXPECT_GT(max_v, 0.5);
}

TEST(Pipelines, ImageSegmentationEndToEndShapes)
{
    Kits19Config config;
    config.num_volumes = 4;
    config.median_extent = 32;
    auto workload = makeImageSegmentation(buildKits19Store(config), 16);
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                quickOptions(2));
    auto batch = loader.next();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->data.shape(),
              (std::vector<std::int64_t>{2, 1, 16, 16, 16}));
    EXPECT_EQ(batch->data.dtype(), tensor::DType::F32);
}

TEST(Pipelines, ObjectDetectionEndToEndShapes)
{
    CocoConfig config;
    config.num_images = 4;
    config.median_width = 96;
    auto workload =
        makeObjectDetection(buildCocoStore(config), 64, 128, 32);
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                quickOptions(2));
    auto batch = loader.next();
    ASSERT_TRUE(batch.has_value());
    ASSERT_EQ(batch->data.rank(), 4u);
    EXPECT_EQ(batch->data.dim(0), 2);
    EXPECT_EQ(batch->data.dim(1), 3);
    // Pad collate: spatial dims are multiples of 32.
    EXPECT_EQ(batch->data.dim(2) % 32, 0);
    EXPECT_EQ(batch->data.dim(3) % 32, 0);
}

TEST(Pipelines, DiskStoreEndToEnd)
{
    // Materialize a synthetic dataset onto real files, then run the
    // pipeline through DiskStore — the paper's on-disk ImageNet path.
    TempDir dir("lotus-disk");
    ImageNetConfig config;
    config.num_images = 6;
    config.median_width = 64;
    auto memory_store = buildImageNetStore(config);
    std::vector<std::string> paths;
    for (std::int64_t i = 0; i < memory_store->size(); ++i) {
        const std::string path =
            dir.file(strFormat("img_%04lld.ljpg", static_cast<long long>(i)));
        writeFile(path, memory_store->read(i));
        paths.push_back(path);
    }
    auto disk_store =
        std::make_shared<pipeline::DiskStore>(std::move(paths));
    auto workload = makeImageClassification(disk_store, 24);
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                quickOptions(2));
    std::int64_t samples = 0;
    while (auto batch = loader.next())
        samples += batch->size();
    EXPECT_EQ(samples, 6);
}

TEST(Pipelines, TraceContainsEveryDeclaredOp)
{
    trace::TraceLogger logger;
    ImageNetConfig config;
    config.num_images = 4;
    config.median_width = 64;
    auto workload = makeImageClassification(buildImageNetStore(config), 24);
    auto options = quickOptions(2);
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);
    while (loader.next().has_value()) {
    }
    std::set<std::string> ops;
    for (const auto &record : logger.records()) {
        if (record.kind == trace::RecordKind::TransformOp)
            ops.insert(record.op_name);
    }
    for (const auto *expected :
         {"Loader", "RandomResizedCrop", "RandomHorizontalFlip",
          "ToTensor", "Normalize", "Collate"})
        EXPECT_EQ(ops.count(expected), 1u) << expected;
}

} // namespace
} // namespace lotus::workloads
