/**
 * @file
 * Unit tests for image resampling, geometry and synthesis.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "image/geometry.h"
#include "image/image.h"
#include "image/resample.h"
#include "image/synth.h"

namespace lotus::image {
namespace {

TEST(Image, ConstructionAndAccess)
{
    Image img(4, 3);
    EXPECT_EQ(img.width(), 4);
    EXPECT_EQ(img.height(), 3);
    EXPECT_EQ(img.byteSize(), 36u);
    img.pixel(2, 1)[1] = 77;
    EXPECT_EQ(img.row(1)[2 * 3 + 1], 77);
}

TEST(Image, TensorRoundTrip)
{
    Rng rng(2);
    Image img = synthesize(rng, 8, 6);
    const auto hwc = img.toTensorHwc();
    ASSERT_EQ(hwc.shape(), (std::vector<std::int64_t>{6, 8, 3}));
    Image back = Image::fromTensorHwc(hwc);
    ASSERT_TRUE(back.sameSize(img));
    for (int y = 0; y < 6; ++y) {
        for (int i = 0; i < 8 * 3; ++i)
            EXPECT_EQ(back.row(y)[i], img.row(y)[i]);
    }
}

TEST(Resample, PrecomputeCoeffsNormalized)
{
    const auto windows = detail::precomputeCoeffs(100, 30, Filter::Bilinear);
    ASSERT_EQ(windows.size(), 30u);
    for (const auto &window : windows) {
        double sum = 0.0;
        for (const float w : window.weights)
            sum += w;
        EXPECT_NEAR(sum, 1.0, 1e-4);
        EXPECT_GE(window.first, 0);
        EXPECT_LE(window.first + static_cast<int>(window.weights.size()),
                  100);
    }
}

TEST(Resample, IdentityKeepsUniformColor)
{
    Image img(16, 16);
    for (int y = 0; y < 16; ++y) {
        for (int i = 0; i < 16 * 3; ++i)
            img.row(y)[i] = 120;
    }
    Image out = resize(img, 16, 16);
    for (int y = 0; y < 16; ++y) {
        for (int i = 0; i < 16 * 3; ++i)
            EXPECT_EQ(out.row(y)[i], 120);
    }
}

TEST(Resample, UniformColorSurvivesAnyScale)
{
    Image img(40, 30);
    for (int y = 0; y < 30; ++y) {
        for (int i = 0; i < 40 * 3; ++i)
            img.row(y)[i] = 200;
    }
    for (const auto &[w, h] : {std::pair{10, 10}, {80, 60}, {17, 23}}) {
        Image out = resize(img, w, h);
        EXPECT_EQ(out.width(), w);
        EXPECT_EQ(out.height(), h);
        for (int y = 0; y < h; ++y) {
            for (int i = 0; i < w * 3; ++i)
                EXPECT_NEAR(out.row(y)[i], 200, 1);
        }
    }
}

TEST(Resample, DownscalePreservesMeanBrightness)
{
    Rng rng(4);
    Image img = synthesize(rng, 64, 64, SynthOptions{0.4, 2});
    Image out = resize(img, 16, 16);
    auto mean = [](const Image &image) {
        double sum = 0.0;
        for (int y = 0; y < image.height(); ++y) {
            for (int i = 0; i < image.width() * 3; ++i)
                sum += image.row(y)[i];
        }
        return sum / static_cast<double>(image.byteSize());
    };
    EXPECT_NEAR(mean(out), mean(img), 4.0);
}

TEST(Resample, BoxFilterWorks)
{
    Rng rng(6);
    Image img = synthesize(rng, 32, 32);
    Image out = resize(img, 8, 8, Filter::Box);
    EXPECT_EQ(out.width(), 8);
    EXPECT_EQ(out.height(), 8);
}

TEST(Geometry, CropExtractsRegion)
{
    Image img(6, 4);
    img.pixel(3, 2)[0] = 99;
    Image out = crop(img, Rect{2, 1, 3, 2});
    EXPECT_EQ(out.width(), 3);
    EXPECT_EQ(out.height(), 2);
    EXPECT_EQ(out.pixel(1, 1)[0], 99); // (3, 2) in source coords
}

TEST(Geometry, CropOutOfBoundsPanics)
{
    Image img(4, 4);
    EXPECT_DEATH(crop(img, Rect{2, 2, 4, 4}), "crop");
}

TEST(Geometry, FlipHorizontalMirrors)
{
    Image img(3, 1);
    img.pixel(0, 0)[0] = 1;
    img.pixel(1, 0)[0] = 2;
    img.pixel(2, 0)[0] = 3;
    Image out = flipHorizontal(img);
    EXPECT_EQ(out.pixel(0, 0)[0], 3);
    EXPECT_EQ(out.pixel(1, 0)[0], 2);
    EXPECT_EQ(out.pixel(2, 0)[0], 1);
}

TEST(Geometry, DoubleFlipIsIdentity)
{
    Rng rng(7);
    Image img = synthesize(rng, 13, 9);
    Image twice = flipHorizontal(flipHorizontal(img));
    for (int y = 0; y < img.height(); ++y) {
        for (int i = 0; i < img.width() * 3; ++i)
            EXPECT_EQ(twice.row(y)[i], img.row(y)[i]);
    }
}

TEST(Synth, DeterministicForSeed)
{
    Rng rng1(42), rng2(42);
    Image a = synthesize(rng1, 20, 20);
    Image b = synthesize(rng2, 20, 20);
    for (int y = 0; y < 20; ++y) {
        for (int i = 0; i < 20 * 3; ++i)
            EXPECT_EQ(a.row(y)[i], b.row(y)[i]);
    }
}

TEST(Synth, DifferentSeedsDiffer)
{
    Rng rng1(1), rng2(2);
    Image a = synthesize(rng1, 20, 20);
    Image b = synthesize(rng2, 20, 20);
    int diffs = 0;
    for (int y = 0; y < 20; ++y) {
        for (int i = 0; i < 20 * 3; ++i) {
            if (a.row(y)[i] != b.row(y)[i])
                ++diffs;
        }
    }
    EXPECT_GT(diffs, 100);
}

/** Property sweep: resize dimension contracts hold for many pairs. */
class ResizePairs
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(ResizePairs, OutputDimensionsExact)
{
    const auto [in_w, in_h, out_w, out_h] = GetParam();
    Rng rng(static_cast<std::uint64_t>(in_w * 31 + in_h));
    Image img = synthesize(rng, in_w, in_h);
    Image out = resize(img, out_w, out_h);
    EXPECT_EQ(out.width(), out_w);
    EXPECT_EQ(out.height(), out_h);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, ResizePairs,
    ::testing::Combine(::testing::Values(5, 32, 100),
                       ::testing::Values(7, 64),
                       ::testing::Values(1, 16, 224),
                       ::testing::Values(1, 50)));

} // namespace
} // namespace lotus::image
