/**
 * @file
 * BufferPool / PooledArray unit tests: size-class rounding, same-
 * pointer recycling, cross-thread returns, steady-state zero-miss
 * behaviour, and the container semantics Tensor/Image storage relies
 * on. Thread-safety of the pool itself is additionally exercised
 * under TSan via tools/run_tsan.sh.
 */

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "memory/buffer_pool.h"

namespace lotus::memory {
namespace {

TEST(BufferPoolTest, CapacityForRoundsToSizeClasses)
{
    // Request + slack rounds up to the next power-of-two class.
    EXPECT_EQ(BufferPool::capacityFor(0), kMinClassBytes);
    EXPECT_EQ(BufferPool::capacityFor(1), kMinClassBytes);
    EXPECT_EQ(BufferPool::capacityFor(kMinClassBytes - kSlackBytes),
              kMinClassBytes);
    // 256 needs 256 + 32 readable bytes: next class up.
    EXPECT_EQ(BufferPool::capacityFor(kMinClassBytes), 2 * kMinClassBytes);
    EXPECT_EQ(BufferPool::capacityFor(1000), std::size_t{2048});
    EXPECT_EQ(BufferPool::capacityFor((1 << 20) - kSlackBytes),
              std::size_t{1} << 20);
    EXPECT_EQ(BufferPool::capacityFor(1 << 20), std::size_t{1} << 21);
    // Oversize requests fall through to alignment-rounded heap sizes.
    const std::size_t oversize = kMaxClassBytes + 1;
    const std::size_t cap = BufferPool::capacityFor(oversize);
    EXPECT_GE(cap, oversize + kSlackBytes);
    EXPECT_EQ(cap % kPoolAlignment, 0u);
}

TEST(BufferPoolTest, AcquireIsAlignedAndSlackReadable)
{
    auto &pool = BufferPool::instance();
    const std::size_t bytes = 1000;
    void *ptr = pool.acquire(bytes);
    ASSERT_NE(ptr, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % kPoolAlignment, 0u);
    // The full size class, including the slack region, is writable
    // memory we own (ASan would flag this otherwise).
    std::memset(ptr, 0xAB, BufferPool::capacityFor(bytes));
    pool.release(ptr, bytes);
}

TEST(BufferPoolTest, ReleaseThenAcquireRecyclesSamePointer)
{
    auto &pool = BufferPool::instance();
    pool.trim();
    void *first = pool.acquire(4096);
    pool.release(first, 4096);
    // Same class, same thread: the thread-local freelist must hand
    // the buffer straight back.
    void *second = pool.acquire(4096);
    EXPECT_EQ(first, second);
    // A *different* class must not alias it.
    void *other = pool.acquire(64 * 1024);
    EXPECT_NE(other, second);
    pool.release(second, 4096);
    pool.release(other, 64 * 1024);
    pool.trim();
}

TEST(BufferPoolTest, HitAndMissAccounting)
{
    auto &pool = BufferPool::instance();
    pool.trim();
    const auto before = pool.stats();
    void *ptr = pool.acquire(8192); // cold: miss
    pool.release(ptr, 8192);
    void *again = pool.acquire(8192); // warm: hit
    pool.release(again, 8192);
    const auto after = pool.stats();
    EXPECT_EQ(after.misses, before.misses + 1);
    EXPECT_EQ(after.hits, before.hits + 1);
    EXPECT_GT(after.cached_bytes, 0u);
    pool.trim();
    EXPECT_EQ(pool.stats().cached_bytes, 0u);
}

TEST(BufferPoolTest, ExitingThreadDonatesCacheToCentral)
{
    auto &pool = BufferPool::instance();
    pool.trim();
    // A worker thread allocates (miss), frees into its local cache,
    // and exits; its cache must flush to the central freelist.
    std::thread([&pool] {
        void *ptr = pool.acquire(123456);
        pool.release(ptr, 123456);
    }).join();
    EXPECT_GT(pool.stats().cached_bytes, 0u);
    const auto warmed = pool.stats();
    // This thread's first acquire of that class comes from central:
    // a hit, no fresh heap allocation.
    void *ptr = pool.acquire(123456);
    const auto after = pool.stats();
    EXPECT_EQ(after.misses, warmed.misses);
    EXPECT_EQ(after.hits, warmed.hits + 1);
    pool.release(ptr, 123456);
    pool.trim();
}

TEST(BufferPoolTest, SteadyStateHasZeroMisses)
{
    auto &pool = BufferPool::instance();
    pool.trim();
    // Mimic the sample path: a fixed working set of buffer sizes
    // cycling every "sample".
    const std::size_t sizes[] = {500 * 375 * 3, 224 * 224 * 3,
                                 224 * 224 * 3 * 4, 187 * 250 * 2};
    for (int warm = 0; warm < 2; ++warm) {
        for (const auto size : sizes) {
            void *ptr = pool.acquire(size);
            pool.release(ptr, size);
        }
    }
    const auto warmed = pool.stats();
    for (int epoch = 0; epoch < 50; ++epoch) {
        for (const auto size : sizes) {
            void *ptr = pool.acquire(size);
            pool.release(ptr, size);
        }
    }
    const auto after = pool.stats();
    EXPECT_EQ(after.misses, warmed.misses) << "steady state missed";
    pool.trim();
}

TEST(PooledArrayTest, ZeroFillAndUninitialized)
{
    PooledArray<std::uint8_t> zeroed(512);
    for (const auto byte : zeroed)
        EXPECT_EQ(byte, 0);
    // The uninitialized variant must still be fully writable.
    PooledArray<std::uint8_t> raw(512, /*zero=*/false);
    std::memset(raw.data(), 0x5A, raw.size());
    EXPECT_EQ(raw[511], 0x5A);
}

TEST(PooledArrayTest, CopyIsDeepMoveIsTransfer)
{
    PooledArray<int> a(64);
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<int>(i);
    PooledArray<int> b(a);
    ASSERT_EQ(b.size(), a.size());
    EXPECT_NE(b.data(), a.data());
    b[0] = -1;
    EXPECT_EQ(a[0], 0);

    const int *data = a.data();
    PooledArray<int> c(std::move(a));
    EXPECT_EQ(c.data(), data);
    EXPECT_EQ(c.size(), 64u);
    EXPECT_EQ(c[63], 63);

    PooledArray<int> d;
    EXPECT_TRUE(d.empty());
    d = std::move(c);
    EXPECT_EQ(d.data(), data);
}

TEST(PooledArrayTest, CopyAssignReplacesContents)
{
    PooledArray<float> a(16);
    a[3] = 3.5f;
    PooledArray<float> b(4);
    b = a;
    ASSERT_EQ(b.size(), 16u);
    EXPECT_EQ(b[3], 3.5f);
    EXPECT_NE(b.data(), a.data());
}

} // namespace
} // namespace lotus::memory
