/**
 * @file
 * Unit tests for the hardware-counting substrate: kernel registry,
 * sampling driver, collection windows, simulated PMU cost model, and
 * the paper's capture-probability formula.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/clock.h"
#include "common/strings.h"
#include "hwcount/collection.h"
#include "hwcount/cost_model.h"
#include "hwcount/counters.h"
#include "hwcount/csv_export.h"
#include "hwcount/kernel_id.h"
#include "hwcount/perf_backend.h"
#include "hwcount/registry.h"
#include "hwcount/sampling_driver.h"
#include "hwcount/thread_counters.h"

namespace lotus::hwcount {
namespace {

class RegistryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto &registry = KernelRegistry::instance();
        registry.reset();
        collection::reset();
        registry.setGroundTruthEnabled(false);
        registry.setClock(&SteadyClock::instance());
    }

    void
    TearDown() override
    {
        SetUp();
    }
};

TEST_F(RegistryTest, KernelInfoLookup)
{
    const auto &info = kernelInfo(KernelId::DecodeMcu);
    EXPECT_STREQ(info.name, "decode_mcu");
    EXPECT_EQ(info.cls, KernelClass::EntropyCode);
    EXPECT_EQ(kernelByName("decode_mcu"), KernelId::DecodeMcu);
    EXPECT_EQ(kernelByName("no_such_fn"), KernelId::Invalid);
    EXPECT_NE(kernelLabel(KernelId::IdctBlock).find("liblotusjpeg"),
              std::string::npos);
}

TEST_F(RegistryTest, EveryKernelHasMetadata)
{
    for (std::size_t i = 1; i < kNumKernels; ++i) {
        const auto &info = kernelInfo(static_cast<KernelId>(i));
        EXPECT_NE(info.name, nullptr);
        EXPECT_GT(std::string(info.name).size(), 0u);
        EXPECT_EQ(kernelByName(info.name), info.id);
    }
}

TEST_F(RegistryTest, AggregatesCallsAndStats)
{
    {
        KernelScope scope(KernelId::IdctBlock);
        scope.stats().arith_ops = 100;
        scope.stats().bytes_read = 64;
    }
    {
        KernelScope scope(KernelId::IdctBlock);
        scope.stats().arith_ops = 50;
    }
    const auto snapshot = KernelRegistry::instance().snapshot();
    const auto &accum =
        snapshot.aggregate[static_cast<std::size_t>(KernelId::IdctBlock)];
    EXPECT_EQ(accum.calls, 2u);
    EXPECT_EQ(accum.stats.arith_ops, 150u);
    EXPECT_EQ(accum.stats.bytes_read, 64u);
    EXPECT_GE(accum.self_time, 0);
}

TEST_F(RegistryTest, NestedScopesSplitSelfTime)
{
    VirtualClock clock(0);
    auto &registry = KernelRegistry::instance();
    registry.setClock(&clock);
    {
        KernelScope outer(KernelId::DecompressOnepass);
        clock.advance(100);
        {
            KernelScope inner(KernelId::YccToRgb);
            clock.advance(40);
        }
        clock.advance(10);
    }
    const auto snapshot = registry.snapshot();
    const auto &outer = snapshot.aggregate[static_cast<std::size_t>(
        KernelId::DecompressOnepass)];
    const auto &inner =
        snapshot.aggregate[static_cast<std::size_t>(KernelId::YccToRgb)];
    EXPECT_EQ(outer.total_time, 150);
    EXPECT_EQ(outer.self_time, 110);
    EXPECT_EQ(inner.self_time, 40);
    EXPECT_EQ(inner.total_time, 40);
}

TEST_F(RegistryTest, TimelineOnlyWhenEnabled)
{
    auto &registry = KernelRegistry::instance();
    { KernelScope scope(KernelId::MemcpyBulk); }
    EXPECT_TRUE(registry.snapshot().timeline.empty());
    registry.setTimelineEnabled(true);
    { KernelScope scope(KernelId::MemcpyBulk); }
    registry.setTimelineEnabled(false);
    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.timeline.size(), 1u);
    EXPECT_EQ(snapshot.timeline[0].kernel, KernelId::MemcpyBulk);
}

TEST_F(RegistryTest, GroundTruthTracksOpTags)
{
    auto &registry = KernelRegistry::instance();
    registry.setGroundTruthEnabled(true);
    const OpTag tag = registry.registerOp("LoaderTest");
    {
        OpTagScope op(tag);
        KernelScope scope(KernelId::DecodeMcu);
        scope.stats().items = 3;
    }
    { KernelScope scope(KernelId::DecodeMcu); } // untagged: not in by_op
    const auto snapshot = registry.snapshot();
    const auto it = snapshot.by_op.find({tag, KernelId::DecodeMcu});
    ASSERT_NE(it, snapshot.by_op.end());
    EXPECT_EQ(it->second.calls, 1u);
    EXPECT_EQ(it->second.stats.items, 3u);
    EXPECT_EQ(registry.opName(tag), "LoaderTest");
}

TEST_F(RegistryTest, RegisterOpIsIdempotent)
{
    auto &registry = KernelRegistry::instance();
    const OpTag a = registry.registerOp("SameOp");
    const OpTag b = registry.registerOp("SameOp");
    EXPECT_EQ(a, b);
}

TEST_F(RegistryTest, LiveOpsReflectCurrentScope)
{
    auto &registry = KernelRegistry::instance();
    const OpTag tag = registry.registerOp("LiveOp");
    {
        OpTagScope op(tag);
        bool found = false;
        for (const auto &[tid, live] : registry.liveOps()) {
            (void)tid;
            if (live == tag)
                found = true;
        }
        EXPECT_TRUE(found);
    }
    for (const auto &[tid, live] : registry.liveOps()) {
        (void)tid;
        EXPECT_NE(live, tag);
    }
}

TEST_F(RegistryTest, HotKernelsSortedBySelfTime)
{
    VirtualClock clock(0);
    auto &registry = KernelRegistry::instance();
    registry.setClock(&clock);
    {
        KernelScope scope(KernelId::MemsetBulk);
        clock.advance(10);
    }
    {
        KernelScope scope(KernelId::DecodeMcu);
        clock.advance(100);
    }
    const auto snapshot = registry.snapshot();
    const auto hot = snapshot.hotKernels();
    ASSERT_GE(hot.size(), 2u);
    EXPECT_EQ(hot[0], KernelId::DecodeMcu);
    EXPECT_EQ(snapshot.totalSelfTime(), 110);
}

// --- Sampling driver ---

KernelInterval
interval(KernelId kernel, std::uint32_t tid, TimeNs start, TimeNs end,
         std::uint16_t depth = 0, OpTag op = kNoOp)
{
    KernelInterval out;
    out.kernel = kernel;
    out.tid = tid;
    out.start = start;
    out.end = end;
    out.depth = depth;
    out.op = op;
    return out;
}

TEST(SamplingDriver, SamplesProportionalToSpan)
{
    // One kernel occupying 80% of a 10 ms-sampled 1 s timeline.
    std::vector<KernelInterval> timeline = {
        interval(KernelId::DecodeMcu, 1, 0, 800 * kMillisecond),
        interval(KernelId::IdctBlock, 1, 800 * kMillisecond, kSecond),
    };
    SamplingDriver driver({10 * kMillisecond, 0, 3});
    const auto counts =
        SamplingDriver::countByKernel(driver.sample(timeline));
    const auto decode = counts.at(KernelId::DecodeMcu);
    const auto idct = counts.at(KernelId::IdctBlock);
    EXPECT_NEAR(static_cast<double>(decode) / (decode + idct), 0.8, 0.05);
}

TEST(SamplingDriver, ShortFunctionOftenMissed)
{
    // 500 µs function inside a 100 ms window, sampled at 10 ms: the
    // capture probability for one window is only ~5%.
    int captured = 0;
    const int windows = 200;
    for (int i = 0; i < windows; ++i) {
        const TimeNs base = i * 100 * kMillisecond;
        std::vector<KernelInterval> timeline = {
            interval(KernelId::MemsetBulk, 1, base, base + 99 * kMillisecond),
            interval(KernelId::FillBitBuffer, 1, base + 10 * kMillisecond,
                     base + 10 * kMillisecond + 500 * kMicrosecond, 1),
        };
        SamplingDriver driver(
            {10 * kMillisecond, 0, static_cast<std::uint64_t>(i + 1)});
        const auto counts = SamplingDriver::countByKernel(
            driver.sampleWindow(timeline, base, base + 100 * kMillisecond));
        if (counts.count(KernelId::FillBitBuffer) > 0)
            ++captured;
    }
    const double rate = static_cast<double>(captured) / windows;
    EXPECT_GT(rate, 0.005);
    EXPECT_LT(rate, 0.25);
}

TEST(SamplingDriver, NestedIntervalAttributedToInnermost)
{
    std::vector<KernelInterval> timeline = {
        interval(KernelId::DecompressOnepass, 1, 0, 100 * kMillisecond),
        interval(KernelId::YccToRgb, 1, 0, 100 * kMillisecond, 1),
    };
    SamplingDriver driver({kMillisecond, 0, 5});
    const auto counts =
        SamplingDriver::countByKernel(driver.sample(timeline));
    EXPECT_EQ(counts.count(KernelId::DecompressOnepass), 0u);
    EXPECT_GT(counts.at(KernelId::YccToRgb), 50u);
}

TEST(SamplingDriver, GapsYieldUnresolvedSamples)
{
    std::vector<KernelInterval> timeline = {
        interval(KernelId::DecodeMcu, 1, 0, 10 * kMillisecond),
        interval(KernelId::DecodeMcu, 1, 90 * kMillisecond,
                 100 * kMillisecond),
    };
    SamplingDriver driver({kMillisecond, 0, 7});
    const auto samples = driver.sample(timeline);
    std::size_t unresolved = 0;
    for (const auto &sample : samples) {
        if (sample.kernel == KernelId::Invalid)
            ++unresolved;
    }
    EXPECT_GT(unresolved, samples.size() / 2);
}

TEST(SamplingDriver, SkidPollutesIsolationWindowWithPreviousFunction)
{
    // A runs before the collection window; B is the function of
    // interest inside the window. With skid, samples early in the
    // window get charged to A — the misattribution the paper's
    // sleep() gap exists to prevent (Listing 4, line 14).
    std::vector<KernelInterval> timeline = {
        interval(KernelId::DecodeMcu, 1, 0, 50 * kMillisecond),
        interval(KernelId::IdctBlock, 1, 50 * kMillisecond,
                 100 * kMillisecond),
    };
    const TimeNs window_start = 50 * kMillisecond;
    const TimeNs window_end = 100 * kMillisecond;
    SamplingDriver no_skid({kMillisecond, 0, 9});
    SamplingDriver with_skid({kMillisecond, 10 * kMillisecond, 9});
    const auto base = SamplingDriver::countByKernel(
        no_skid.sampleWindow(timeline, window_start, window_end));
    const auto skewed = SamplingDriver::countByKernel(
        with_skid.sampleWindow(timeline, window_start, window_end));
    EXPECT_EQ(base.count(KernelId::DecodeMcu), 0u);
    EXPECT_GT(skewed.at(KernelId::DecodeMcu), 0u);
    EXPECT_LT(skewed.at(KernelId::IdctBlock),
              base.at(KernelId::IdctBlock));

    // A sleep gap between A and the window removes the pollution:
    // the skid-shifted lookups land in the quiet gap instead of A.
    std::vector<KernelInterval> gapped = {
        interval(KernelId::DecodeMcu, 1, 0, 30 * kMillisecond),
        interval(KernelId::IdctBlock, 1, 50 * kMillisecond,
                 100 * kMillisecond),
    };
    const auto quiet = SamplingDriver::countByKernel(
        with_skid.sampleWindow(gapped, window_start, window_end));
    EXPECT_EQ(quiet.count(KernelId::DecodeMcu), 0u);
}

TEST(SamplingDriver, WindowRestrictsSamples)
{
    std::vector<KernelInterval> timeline = {
        interval(KernelId::DecodeMcu, 1, 0, 100 * kMillisecond),
    };
    SamplingDriver driver({kMillisecond, 0, 11});
    const auto samples =
        driver.sampleWindow(timeline, 40 * kMillisecond, 60 * kMillisecond);
    for (const auto &sample : samples) {
        EXPECT_GE(sample.time, 40 * kMillisecond);
        EXPECT_LT(sample.time, 60 * kMillisecond);
    }
    EXPECT_NEAR(static_cast<double>(samples.size()), 20.0, 2.0);
}

TEST(SamplingDriver, CaptureProbabilityFormula)
{
    // The paper's worked example: f = 660 µs, s = 10 ms, C = 75%
    // "requires 20 runs". Exactly evaluated, 20 runs give C = 0.7448
    // and the first n meeting 0.75 is 21 — the paper rounds. We
    // assert the exact math and that 20 runs land within 1% of the
    // paper's target.
    const double c20 = SamplingDriver::captureProbability(
        660 * kMicrosecond, 10 * kMillisecond, 20);
    EXPECT_NEAR(c20, 0.75, 0.01);
    EXPECT_EQ(SamplingDriver::runsForCapture(660 * kMicrosecond,
                                             10 * kMillisecond, 0.75),
              21);
    const double c21 = SamplingDriver::captureProbability(
        660 * kMicrosecond, 10 * kMillisecond, 21);
    EXPECT_GE(c21, 0.75);
    // Degenerate cases.
    EXPECT_DOUBLE_EQ(
        SamplingDriver::captureProbability(kMillisecond, kMillisecond, 1),
        1.0);
    EXPECT_EQ(SamplingDriver::runsForCapture(kMillisecond, kMillisecond,
                                             0.99),
              1);
}

// --- Collection windows ---

TEST_F(RegistryTest, CollectionWindowsGateTimeline)
{
    collection::resume();
    EXPECT_TRUE(collection::active());
    { KernelScope scope(KernelId::DecodeMcu); }
    collection::pause();
    EXPECT_FALSE(collection::active());
    { KernelScope scope(KernelId::IdctBlock); }
    const auto snapshot = KernelRegistry::instance().snapshot();
    ASSERT_EQ(snapshot.timeline.size(), 1u);
    EXPECT_EQ(snapshot.timeline[0].kernel, KernelId::DecodeMcu);
    const auto windows = collection::windows();
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_LE(windows[0].start, snapshot.timeline[0].start);
    EXPECT_GE(windows[0].end, snapshot.timeline[0].end);
}

TEST_F(RegistryTest, CollectionResumeTwiceIsIdempotent)
{
    collection::resume();
    collection::resume();
    collection::pause();
    collection::pause();
    EXPECT_EQ(collection::windows().size(), 1u);
}

// --- Counters and cost model ---

TEST(Counters, SumAndScale)
{
    CounterSet a;
    a.cycles = 1000;
    a.instructions = 800;
    a.llc_misses = 10;
    CounterSet b = a.scaled(0.5);
    EXPECT_EQ(b.cycles, 500u);
    EXPECT_EQ(b.llc_misses, 5u);
    CounterSet c = a + b;
    EXPECT_EQ(c.instructions, 1200u);
    EXPECT_NEAR(a.ipc(), 0.8, 1e-9);
}

TEST(Counters, DerivedMetricsBounded)
{
    CounterSet c;
    c.cycles = 100;
    c.frontend_stall_slots = 1000; // > 4 * cycles
    c.dram_stall_cycles = 500;
    EXPECT_DOUBLE_EQ(c.frontendBoundFraction(), 1.0);
    EXPECT_DOUBLE_EQ(c.dramBoundFraction(), 1.0);
    CounterSet zero;
    EXPECT_DOUBLE_EQ(zero.frontendBoundFraction(), 0.0);
    EXPECT_DOUBLE_EQ(zero.ipc(), 0.0);
}

TEST(CostModel, WorkScalesCounters)
{
    SimulatedPmu pmu;
    WorkStats small;
    small.bytes_read = 1000;
    small.arith_ops = 1000;
    WorkStats big;
    big.bytes_read = 10000;
    big.arith_ops = 10000;
    const auto cs = pmu.countersFor(KernelId::IdctBlock, small);
    const auto cb = pmu.countersFor(KernelId::IdctBlock, big);
    EXPECT_NEAR(static_cast<double>(cb.instructions) / cs.instructions,
                10.0, 0.1);
    EXPECT_GT(cb.cycles, cs.cycles);
}

TEST(CostModel, OccupancyRaisesFrontendBoundLowersDram)
{
    SimulatedPmu pmu;
    WorkStats work;
    work.bytes_read = 1 << 20;
    work.arith_ops = 1 << 20;
    work.branches = 1 << 16;
    const auto idle = pmu.countersFor(KernelId::DecodeMcu, work, 0.0);
    const auto busy = pmu.countersFor(KernelId::DecodeMcu, work, 0.9);
    EXPECT_GT(busy.frontendBoundFraction(), idle.frontendBoundFraction());
    EXPECT_LT(busy.dramBoundFraction(), idle.dramBoundFraction());
    EXPECT_LT(busy.uopSupplyPerCycle(), idle.uopSupplyPerCycle());
    EXPECT_GT(busy.cycles, idle.cycles);
}

TEST(CostModel, CpuInflationMonotone)
{
    SimulatedPmu pmu;
    EXPECT_DOUBLE_EQ(pmu.cpuTimeInflation(0.0), 1.0);
    EXPECT_GT(pmu.cpuTimeInflation(0.5), 1.0);
    EXPECT_GT(pmu.cpuTimeInflation(0.9), pmu.cpuTimeInflation(0.5));
}

TEST(CostModel, ClassesDiffer)
{
    SimulatedPmu pmu;
    WorkStats work;
    work.bytes_read = 1 << 20;
    const auto mover = pmu.countersFor(KernelId::MemcpyBulk, work);
    const auto entropy = pmu.countersFor(KernelId::DecodeMcu, work);
    // Entropy decode is instruction-dense per byte; movers are not.
    EXPECT_GT(entropy.instructions, mover.instructions);
    EXPECT_GT(mover.l1_misses, entropy.l1_misses);
}

TEST(CostModel, SnapshotConversionSkipsUnusedKernels)
{
    auto &registry = KernelRegistry::instance();
    registry.reset();
    {
        KernelScope scope(KernelId::YccToRgb);
        scope.stats().bytes_read = 1234;
        scope.stats().arith_ops = 5678;
    }
    SimulatedPmu pmu;
    const auto counters = pmu.countersForSnapshot(registry.snapshot());
    ASSERT_EQ(counters.size(), kNumKernels);
    EXPECT_GT(
        counters[static_cast<std::size_t>(KernelId::YccToRgb)].instructions,
        0u);
    EXPECT_EQ(
        counters[static_cast<std::size_t>(KernelId::DecodeMcu)].instructions,
        0u);
    registry.reset();
}

TEST(CsvExport, RoundTripAndOrdering)
{
    std::vector<CounterSet> per_kernel(kNumKernels);
    auto &decode =
        per_kernel[static_cast<std::size_t>(KernelId::DecodeMcu)];
    decode.cycles = 5000;
    decode.instructions = 4000;
    decode.frontend_stall_slots = 8000;
    decode.branches = 300;
    auto &idct =
        per_kernel[static_cast<std::size_t>(KernelId::IdctBlock)];
    idct.cycles = 9000;
    idct.instructions = 11000;
    idct.llc_misses = 12;

    const std::string csv = countersToCsv(per_kernel);
    // Header + two rows; rows ordered by cycles descending.
    const auto lines = strSplit(csv, '\n');
    ASSERT_GE(lines.size(), 3u);
    EXPECT_NE(lines[0].find("function,library,cycles"),
              std::string::npos);
    EXPECT_EQ(lines[1].find("jpeg_idct_islow"), 0u);
    EXPECT_EQ(lines[2].find("decode_mcu"), 0u);

    const auto back = countersFromCsv(csv);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].first, KernelId::IdctBlock);
    EXPECT_EQ(back[0].second.cycles, 9000u);
    EXPECT_EQ(back[0].second.llc_misses, 12u);
    EXPECT_EQ(back[1].second.frontend_stall_slots, 8000u);
    EXPECT_EQ(back[1].second.branches, 300u);
}

TEST(CsvExport, SkipsUnknownFunctions)
{
    const std::string csv =
        "function,library,cycles,instructions,uops_delivered,"
        "uops_retired,frontend_stall_slots,backend_stall_slots,"
        "l1_misses,l2_misses,llc_misses,dram_stall_cycles,branches,"
        "branch_mispredicts,fe_bound,dram_bound\n"
        "not_ours,libother.so,1,2,3,4,5,6,7,8,9,10,11,12,0.1,0.2\n"
        "decode_mcu,liblotusjpeg.so.9,100,90,80,70,60,50,40,30,20,10,"
        "5,1,0.3,0.1\n";
    const auto parsed = countersFromCsv(csv);
    ASSERT_EQ(parsed.size(), 1u);
    EXPECT_EQ(parsed[0].first, KernelId::DecodeMcu);
    EXPECT_EQ(parsed[0].second.instructions, 90u);
}

TEST(PerfBackend, GracefulWhenUnavailable)
{
    PerfEventPmu pmu;
    if (!pmu.valid()) {
        EXPECT_FALSE(pmu.error().empty());
        // All calls must be safe no-ops.
        pmu.start();
        pmu.stop();
        EXPECT_EQ(pmu.read().cycles, 0u);
    } else {
        pmu.start();
        volatile double acc = 0.0;
        for (int i = 0; i < 100000; ++i)
            acc = acc + i * 0.5;
        pmu.stop();
        EXPECT_GT(pmu.read().instructions, 0u);
    }
}


// --- Per-thread attribution and backend selection ---

/** setenv/unsetenv LOTUS_PMU for one test, restoring on scope exit. */
class ScopedPmuEnv
{
  public:
    explicit ScopedPmuEnv(const char *value)
    {
        const char *old = std::getenv("LOTUS_PMU");
        had_old_ = old != nullptr;
        if (had_old_)
            old_ = old;
        if (value != nullptr)
            setenv("LOTUS_PMU", value, 1);
        else
            unsetenv("LOTUS_PMU");
        ThreadCounterRegistry::instance().resetBackendForTesting();
    }

    ~ScopedPmuEnv()
    {
        if (had_old_)
            setenv("LOTUS_PMU", old_.c_str(), 1);
        else
            unsetenv("LOTUS_PMU");
        auto &registry = ThreadCounterRegistry::instance();
        registry.setEnabled(false);
        registry.detachCurrentThread();
        registry.reset();
        registry.resetBackendForTesting();
    }

  private:
    bool had_old_ = false;
    std::string old_;
};

TEST(PerfBackend, EnvOverrideParsing)
{
    {
        ScopedPmuEnv env("sim");
        EXPECT_EQ(pmuBackendFromEnv(), PmuBackend::kSim);
    }
    {
        ScopedPmuEnv env("perf");
        EXPECT_EQ(pmuBackendFromEnv(), PmuBackend::kPerf);
    }
    {
        ScopedPmuEnv env("auto");
        EXPECT_EQ(pmuBackendFromEnv(), PmuBackend::kAuto);
    }
    {
        ScopedPmuEnv env(nullptr);
        EXPECT_EQ(pmuBackendFromEnv(), PmuBackend::kAuto);
    }
}

TEST(ThreadCounters, DeltaClampsAtZero)
{
    CounterSet now, then;
    now.cycles = 100;
    then.cycles = 50;
    then.instructions = 10; // counter wobbled below the start read
    const CounterSet d = counterDelta(now, then);
    EXPECT_EQ(d.cycles, 50u);
    EXPECT_EQ(d.instructions, 0u);
    EXPECT_EQ(d.llc_misses, 0u);
}

TEST(ThreadCounters, SimBackendDegradesGracefully)
{
    ScopedPmuEnv env("sim");
    auto &registry = ThreadCounterRegistry::instance();
    registry.setEnabled(true);
    EXPECT_EQ(registry.resolvedBackend(), PmuBackend::kSim);
    EXPECT_NE(registry.fallbackReason().find("LOTUS_PMU=sim"),
              std::string::npos);
    // The sim backend needs no per-thread state: attach is a no-op
    // and the KernelScope fast path stays cold.
    EXPECT_FALSE(registry.attachCurrentThread());
    EXPECT_FALSE(ThreadCounterRegistry::threadHasPmu());
    EXPECT_EQ(ThreadCounterRegistry::readCurrent().cycles, 0u);

    // snapshot() must still return a usable per-kernel vector,
    // synthesized from the KernelRegistry's work accounting.
    auto &kernels = KernelRegistry::instance();
    kernels.reset();
    {
        KernelScope scope(KernelId::YccToRgb);
        scope.stats().bytes_read = 1 << 20;
        scope.stats().arith_ops = 1 << 20;
    }
    const PmuSnapshot snap = registry.snapshot(0.5);
    ASSERT_EQ(snap.per_kernel.size(), kNumKernels);
    EXPECT_FALSE(snap.measured);
    EXPECT_NE(snap.source.find("sim"), std::string::npos);
    EXPECT_GT(
        snap.per_kernel[static_cast<std::size_t>(KernelId::YccToRgb)]
            .instructions,
        0u);
    EXPECT_GT(snap.total.instructions, 0u);
    kernels.reset();
}

TEST(ThreadCounters, PerfRequestedButUnavailableFallsBack)
{
    if (PerfEventPmu::available())
        GTEST_SKIP() << "host grants perf_event_open; fallback untestable";
    ScopedPmuEnv env("perf");
    auto &registry = ThreadCounterRegistry::instance();
    registry.setEnabled(true); // warns once, then degrades
    EXPECT_EQ(registry.resolvedBackend(), PmuBackend::kSim);
    EXPECT_FALSE(registry.fallbackReason().empty());
    EXPECT_EQ(registry.fallbackReason(),
              PerfEventPmu::unavailableReason());
    EXPECT_FALSE(registry.attachCurrentThread());
    const PmuSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.per_kernel.size(), kNumKernels);
    EXPECT_FALSE(snap.measured);
}

TEST(ThreadCounters, MeasuredAttributionWithRealPmu)
{
    if (!PerfEventPmu::available())
        GTEST_SKIP() << "perf_event_open unavailable: "
                     << PerfEventPmu::unavailableReason();
    ScopedPmuEnv env("perf");
    auto &registry = ThreadCounterRegistry::instance();
    registry.setEnabled(true);
    ASSERT_EQ(registry.resolvedBackend(), PmuBackend::kPerf);
    ASSERT_TRUE(registry.attachCurrentThread());
    EXPECT_TRUE(ThreadCounterRegistry::threadHasPmu());
    registry.reset();
    {
        KernelScope scope(KernelId::IdctBlock);
        volatile double acc = 0.0;
        for (int i = 0; i < 200000; ++i)
            acc = acc + i * 0.5;
    }
    const PmuSnapshot snap = registry.snapshot();
    ASSERT_EQ(snap.per_kernel.size(), kNumKernels);
    EXPECT_TRUE(snap.measured);
    EXPECT_EQ(snap.source, "perf");
    EXPECT_GE(snap.threads_real, 1);
    EXPECT_GT(
        snap.per_kernel[static_cast<std::size_t>(KernelId::IdctBlock)]
            .instructions,
        0u);
    EXPECT_GT(snap.multiplex_fraction, 0.0);
    EXPECT_LE(snap.multiplex_fraction, 1.0);
}

TEST(ThreadCounters, NestedScopesChargeSelfDeltas)
{
    if (!PerfEventPmu::available())
        GTEST_SKIP() << "perf_event_open unavailable: "
                     << PerfEventPmu::unavailableReason();
    ScopedPmuEnv env("perf");
    auto &registry = ThreadCounterRegistry::instance();
    registry.setEnabled(true);
    ASSERT_TRUE(registry.attachCurrentThread());
    registry.reset();
    volatile double acc = 0.0;
    {
        KernelScope outer(KernelId::DecodeMcu);
        for (int i = 0; i < 100000; ++i)
            acc = acc + i * 0.5;
        {
            KernelScope inner(KernelId::IdctBlock);
            for (int i = 0; i < 100000; ++i)
                acc = acc + i * 0.25;
        }
    }
    const PmuSnapshot snap = registry.snapshot();
    const auto &outer_counters =
        snap.per_kernel[static_cast<std::size_t>(KernelId::DecodeMcu)];
    const auto &inner_counters =
        snap.per_kernel[static_cast<std::size_t>(KernelId::IdctBlock)];
    // Both kernels ran comparable work; self-attribution must not
    // double-charge the inner scope's instructions to the outer one.
    EXPECT_GT(outer_counters.instructions, 0u);
    EXPECT_GT(inner_counters.instructions, 0u);
    EXPECT_LT(outer_counters.instructions,
              2 * inner_counters.instructions + 100000);
}

} // namespace
} // namespace lotus::hwcount
