/**
 * @file
 * Multi-tenant preprocessing service suite: per-client bit-identity
 * against a solo DataLoader under every ErrorPolicy (the DESIGN.md
 * §15 determinism contract), multi-epoch replay, weighted fairness
 * under a synthetic noisy neighbor, admission control (client cap and
 * in-flight sample cap), mid-epoch disconnect draining without
 * stalling other tenants, and the reconfigure guard rail on adopted
 * loaders. Runs under TSan (tools/run_tsan.sh) and ASan/UBSan
 * (tools/run_sanitizers.sh).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "dataflow/data_loader.h"
#include "dataflow/error_policy.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "metrics/metrics.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/faulty_store.h"
#include "pipeline/image_folder.h"
#include "pipeline/store.h"
#include "pipeline/transforms/vision.h"
#include "service/loader_client.h"
#include "service/preproc_server.h"
#include "workloads/synthetic.h"

namespace lotus::service {
namespace {

using dataflow::DataLoader;
using dataflow::DataLoaderOptions;
using dataflow::ErrorPolicy;
using dataflow::LoaderError;
using dataflow::Schedule;
using pipeline::FaultyStore;
using pipeline::FaultyStoreOptions;
using pipeline::PipelineContext;
using pipeline::Sample;

/** Index-stamped tensors plus per-sample RNG draws (the same probe
 *  shape test_work_stealing.cc uses): any deviation from the
 *  per-sample reseeding contract shows up as a byte diff. */
class ProbeDataset : public pipeline::Dataset
{
  public:
    explicit ProbeDataset(std::int64_t size,
                          std::function<TimeNs(std::int64_t)> cost = {})
        : size_(size), cost_fn_(std::move(cost))
    {
    }

    std::int64_t size() const override { return size_; }

    Sample
    get(std::int64_t index, PipelineContext &ctx) const override
    {
        if (cost_fn_) {
            const TimeNs cost = cost_fn_(index);
            const auto &clock = SteadyClock::instance();
            const TimeNs deadline = clock.now() + cost;
            while (clock.now() < deadline) {
            }
        }
        Sample sample;
        sample.data = tensor::Tensor(tensor::DType::F32, {4});
        float *out = sample.data.data<float>();
        for (int i = 0; i < 4; ++i)
            out[i] = static_cast<float>(index) +
                     static_cast<float>(ctx.rngRef().nextDouble());
        sample.label = index;
        return sample;
    }

  private:
    std::int64_t size_;
    std::function<TimeNs(std::int64_t)> cost_fn_;
};

std::vector<std::uint8_t>
batchBytes(const pipeline::Batch &batch)
{
    std::vector<std::uint8_t> bytes;
    const std::uint8_t *raw = batch.data.raw();
    bytes.insert(bytes.end(), raw, raw + batch.data.byteSize());
    for (const std::int64_t label : batch.labels) {
        const auto *p = reinterpret_cast<const std::uint8_t *>(&label);
        bytes.insert(bytes.end(), p, p + sizeof(label));
    }
    return bytes;
}

/** One solo-DataLoader epoch's payload, the bit-identity reference. */
std::vector<std::uint8_t>
soloEpochBytes(const std::shared_ptr<pipeline::Dataset> &dataset,
               const ClientConfig &config, Schedule schedule,
               int workers)
{
    DataLoaderOptions options;
    options.batch_size = config.batch_size;
    options.num_workers = workers;
    options.schedule = schedule;
    options.shuffle = config.shuffle;
    options.seed = config.seed;
    options.drop_last = config.drop_last;
    options.error_policy = config.error_policy;
    options.max_retries = config.max_retries;
    options.max_refill_attempts = config.max_refill_attempts;
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(), options);
    std::vector<std::uint8_t> bytes;
    while (auto batch = loader.next()) {
        const auto chunk = batchBytes(*batch);
        bytes.insert(bytes.end(), chunk.begin(), chunk.end());
    }
    return bytes;
}

/** One service-client epoch's payload. */
std::vector<std::uint8_t>
clientEpochBytes(LoaderClient &client)
{
    std::vector<std::uint8_t> bytes;
    while (auto batch = client.next()) {
        const auto chunk = batchBytes(*batch);
        bytes.insert(bytes.end(), chunk.begin(), chunk.end());
    }
    return bytes;
}

std::shared_ptr<pipeline::ImageFolderDataset>
makeImageDataset(std::shared_ptr<const pipeline::BlobStore> store)
{
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::make_shared<pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/1 << 20);
}

std::shared_ptr<pipeline::InMemoryStore>
makeEncodedStore(int count)
{
    auto store = std::make_shared<pipeline::InMemoryStore>();
    Rng rng(99);
    for (int i = 0; i < count; ++i)
        store->add(
            image::codec::encode(image::synthesize(rng, 16, 16)));
    return store;
}

TEST(Service, ClientsBitIdenticalToSoloLoader)
{
    // Three clients with different seeds, batch sizes, and shuffle
    // settings share one fleet concurrently; each must produce the
    // exact bytes its own solo loader would.
    auto dataset = std::make_shared<ProbeDataset>(48);
    PreprocServer server({.num_workers = 4});

    ClientConfig configs[3];
    configs[0] = {.batch_size = 4, .shuffle = true, .seed = 31};
    configs[1] = {.batch_size = 6, .shuffle = false, .seed = 7};
    configs[2] = {.batch_size = 5,
                  .shuffle = true,
                  .seed = 100,
                  .drop_last = false};

    std::vector<std::vector<std::uint8_t>> expected;
    for (const auto &config : configs)
        expected.push_back(soloEpochBytes(
            dataset, config, Schedule::kWorkStealing, 2));

    std::vector<std::shared_ptr<LoaderClient>> clients;
    for (const auto &config : configs) {
        auto connected = server.connect(
            dataset, std::make_shared<pipeline::StackCollate>(), config);
        ASSERT_TRUE(connected.ok());
        clients.push_back(connected.take());
    }

    std::vector<std::vector<std::uint8_t>> got(clients.size());
    std::vector<std::thread> drivers;
    for (std::size_t i = 0; i < clients.size(); ++i)
        drivers.emplace_back(
            [&, i] { got[i] = clientEpochBytes(*clients[i]); });
    for (auto &driver : drivers)
        driver.join();

    for (std::size_t i = 0; i < clients.size(); ++i)
        EXPECT_EQ(got[i], expected[i]) << "client " << i;
}

TEST(Service, MultiEpochReplayIsExactlyReproducible)
{
    auto dataset = std::make_shared<ProbeDataset>(24);
    ClientConfig config{.batch_size = 4, .shuffle = true, .seed = 13};

    auto collectTwoEpochs = [&] {
        PreprocServer server({.num_workers = 3});
        auto client =
            server
                .connect(dataset,
                         std::make_shared<pipeline::StackCollate>(),
                         config)
                .take();
        std::vector<std::vector<std::uint8_t>> epochs;
        for (int epoch = 0; epoch < 2; ++epoch) {
            client->startEpoch();
            epochs.push_back(clientEpochBytes(*client));
        }
        return epochs;
    };
    const auto first = collectTwoEpochs();
    const auto second = collectTwoEpochs();
    EXPECT_NE(first[0], first[1]); // epochs draw differently...
    EXPECT_EQ(first, second);      // ...but replay exactly

    // And each epoch matches the solo loader's same-numbered epoch.
    DataLoaderOptions solo;
    solo.batch_size = config.batch_size;
    solo.num_workers = 2;
    solo.schedule = Schedule::kWorkStealing;
    solo.shuffle = config.shuffle;
    solo.seed = config.seed;
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(), solo);
    for (int epoch = 0; epoch < 2; ++epoch) {
        loader.startEpoch();
        std::vector<std::uint8_t> bytes;
        while (auto batch = loader.next()) {
            const auto chunk = batchBytes(*batch);
            bytes.insert(bytes.end(), chunk.begin(), chunk.end());
        }
        EXPECT_EQ(first[static_cast<std::size_t>(epoch)], bytes)
            << "epoch " << epoch;
    }
}

// --- Error policies through the service -------------------------------

TEST(Service, FailPolicySurfacesErrorInBatchOrderAndRestarts)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(12),
                                                FaultyStoreOptions{});
    faulty->inject(5, FaultyStore::Fault::kIoError);
    PreprocServer server({.num_workers = 2});
    auto client = server
                      .connect(makeImageDataset(faulty),
                               std::make_shared<pipeline::StackCollate>(),
                               {.batch_size = 2, .seed = 31})
                      .take();

    std::int64_t delivered = 0;
    bool threw = false;
    try {
        while (client->next().has_value())
            ++delivered;
    } catch (const LoaderError &e) {
        threw = true;
        EXPECT_EQ(e.batchId(), 2); // index 5 lives in batch {4, 5}
        EXPECT_EQ(e.error().code, ErrorCode::kIoError);
        EXPECT_EQ(e.error().stage, "store");
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(delivered, 2); // error surfaced in batch order

    // Restartable after the failed epoch, still epoch 0 (like the
    // solo loader, an aborted epoch replays under the same number).
    client->startEpoch();
    EXPECT_EQ(client->epoch(), 0);
    auto batch = client->next();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->batch_id, 0);
}

TEST(Service, SkipPolicyMatchesSoloLoaderLabels)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(40),
                                                FaultyStoreOptions{});
    faulty->inject(0, FaultyStore::Fault::kIoError);
    faulty->inject(20, FaultyStore::Fault::kIoError);
    auto dataset = makeImageDataset(faulty);
    ClientConfig config{.batch_size = 4,
                        .seed = 31,
                        .error_policy = ErrorPolicy::kSkip};

    const auto expected =
        soloEpochBytes(dataset, config, Schedule::kWorkStealing, 2);

    PreprocServer server({.num_workers = 2});
    auto client = server
                      .connect(dataset,
                               std::make_shared<pipeline::StackCollate>(),
                               config)
                      .take();
    EXPECT_EQ(clientEpochBytes(*client), expected);
}

TEST(Service, RetryPolicyClearsTransientFaultsBitIdentically)
{
    FaultyStoreOptions fault_options;
    fault_options.transient_failures = 2;
    auto makeFaulty = [&] {
        auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(12),
                                                    fault_options);
        faulty->inject(3, FaultyStore::Fault::kIoError);
        return faulty;
    };
    ClientConfig config{.batch_size = 2,
                        .seed = 31,
                        .error_policy = ErrorPolicy::kRetry,
                        .max_retries = 2};

    // Fresh stores per run: transient fault budgets are store state.
    const auto expected = soloEpochBytes(makeImageDataset(makeFaulty()),
                                         config,
                                         Schedule::kWorkStealing, 2);

    PreprocServer server({.num_workers = 2});
    auto client = server
                      .connect(makeImageDataset(makeFaulty()),
                               std::make_shared<pipeline::StackCollate>(),
                               config)
                      .take();
    EXPECT_EQ(clientEpochBytes(*client), expected);
}

// --- Fairness, admission, disconnect ----------------------------------

TEST(Service, WeightedFairnessShieldsLightClientFromNoisyNeighbor)
{
    // The noisy neighbor's samples cost ~2 ms; the light client's are
    // nearly free. Weighted-fair victim selection must let the light
    // epoch finish promptly while the heavy backlog is still open —
    // the quantitative p99 gate lives in bench_loader's multi_tenant
    // section; this is the functional ordering check.
    auto heavy_dataset = std::make_shared<ProbeDataset>(
        64, [](std::int64_t) -> TimeNs { return 2 * kMillisecond; });
    auto light_dataset = std::make_shared<ProbeDataset>(
        64, [](std::int64_t) -> TimeNs { return 20 * kMicrosecond; });

    PreprocServer server({.num_workers = 2});
    auto heavy =
        server
            .connect(heavy_dataset,
                     std::make_shared<pipeline::StackCollate>(),
                     {.batch_size = 8, .seed = 1, .prefetch_batches = 4})
            .take();
    auto light =
        server
            .connect(light_dataset,
                     std::make_shared<pipeline::StackCollate>(),
                     {.batch_size = 8,
                      .seed = 2,
                      .weight = 4.0,
                      .prefetch_batches = 4})
            .take();

    // Fill the fleet with heavy work, then run the light epoch to
    // completion without consuming any heavy batch.
    heavy->startEpoch();
    std::int64_t light_batches = 0;
    while (light->next().has_value())
        ++light_batches;
    EXPECT_EQ(light_batches, light->numBatches());

    ServerStats stats = server.stats();
    std::uint64_t heavy_service = 0, light_service = 0;
    std::uint64_t heavy_shipped = 0;
    for (const auto &client : stats.clients) {
        if (client.id == heavy->id()) {
            heavy_service = client.service_ns;
            heavy_shipped = client.shipped_batches;
        }
        if (client.id == light->id())
            light_service = client.service_ns;
    }
    // The heavy epoch is still open (its 8 batches cannot all ship:
    // backpressure caps unconsumed output), and its executed service
    // time dominates — exactly the vtime ordering that shielded the
    // light client.
    EXPECT_LT(heavy_shipped,
              static_cast<std::uint64_t>(heavy->numBatches()));
    EXPECT_GT(heavy_service, light_service);

    // Drain the heavy epoch so both tenants end cleanly.
    while (heavy->next().has_value()) {
    }
}

TEST(Service, AdmissionControlRefusesPastMaxClients)
{
    auto dataset = std::make_shared<ProbeDataset>(8);
    auto collate = std::make_shared<pipeline::StackCollate>();
    PreprocServer server({.num_workers = 1, .max_clients = 2});

    auto first = server.connect(dataset, collate, {.batch_size = 2});
    auto second = server.connect(dataset, collate, {.batch_size = 2});
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());

    auto third = server.connect(dataset, collate, {.batch_size = 2});
    ASSERT_FALSE(third.ok());
    EXPECT_EQ(third.error().code, ErrorCode::kRejected);
    EXPECT_EQ(server.stats().rejected_connects, 1u);

    // Disconnecting frees the slot.
    second.take().reset();
    auto fourth = server.connect(dataset, collate, {.batch_size = 2});
    EXPECT_TRUE(fourth.ok());
}

TEST(Service, InflightSampleCapBoundsDecomposition)
{
    auto dataset = std::make_shared<ProbeDataset>(
        64, [](std::int64_t) -> TimeNs { return 50 * kMicrosecond; });
    PreprocServer server({.num_workers = 2,
                          .max_inflight_samples = 16,
                          .outbound_capacity = 8});
    auto client =
        server
            .connect(dataset, std::make_shared<pipeline::StackCollate>(),
                     {.batch_size = 8, .seed = 5, .prefetch_batches = 8})
            .take();
    while (client->next().has_value()) {
    }
    const ServerStats stats = server.stats();
    ASSERT_EQ(stats.clients.size(), 1u);
    EXPECT_GT(stats.clients[0].peak_inflight_samples, 0);
    EXPECT_LE(stats.clients[0].peak_inflight_samples, 16);
}

TEST(Service, DisconnectMidEpochDrainsWithoutStallingOthers)
{
    auto slow_dataset = std::make_shared<ProbeDataset>(
        64, [](std::int64_t) -> TimeNs { return kMillisecond; });
    auto fast_dataset = std::make_shared<ProbeDataset>(48);
    ClientConfig fast_config{.batch_size = 4, .shuffle = true, .seed = 31};
    const auto expected = soloEpochBytes(
        fast_dataset, fast_config, Schedule::kWorkStealing, 2);

    PreprocServer server({.num_workers = 2});
    auto survivor = server
                        .connect(fast_dataset,
                                 std::make_shared<pipeline::StackCollate>(),
                                 fast_config)
                        .take();
    {
        auto doomed =
            server
                .connect(slow_dataset,
                         std::make_shared<pipeline::StackCollate>(),
                         {.batch_size = 8, .seed = 1,
                          .prefetch_batches = 4})
                .take();
        doomed->startEpoch();
        auto batch = doomed->next(); // consume one, then walk away
        ASSERT_TRUE(batch.has_value());
    } // ~LoaderClient disconnects with work still in flight

    // The survivor's epoch completes bit-identically: the canceled
    // tenant's residue drains as no-ops, it does not poison peers.
    EXPECT_EQ(clientEpochBytes(*survivor), expected);

    // The drained tasks were counted, and the disconnected client is
    // eventually reaped from the roster (workers reap when idle).
    const TimeNs deadline =
        SteadyClock::instance().now() + 5'000 * kMillisecond;
    ServerStats stats = server.stats();
    while ((stats.live_clients != 1 || stats.clients.size() != 1) &&
           SteadyClock::instance().now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        stats = server.stats();
    }
    EXPECT_EQ(stats.live_clients, 1);
    EXPECT_EQ(stats.clients.size(), 1u);
    EXPECT_GT(stats.dropped_tasks, 0u);
}

TEST(Service, ReconfigureGuardRailOnAdoptedLoader)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto dataset = std::make_shared<ProbeDataset>(8);
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 2;
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(), options);
    PreprocServer server({.num_workers = 1, .name = "svc"});
    server.adoptLoader(loader);
    EXPECT_EQ(loader.attachedService(), "svc");

    // Fleet-level knobs are fatal on an adopted loader...
    dataflow::LoaderReconfig fleet_change;
    fleet_change.num_workers = 4;
    EXPECT_DEATH(loader.reconfigure(fleet_change),
                 "attached to preprocessing service 'svc'");

    // ...but per-client pacing knobs stay tunable.
    dataflow::LoaderReconfig pacing;
    pacing.num_workers = options.num_workers;
    pacing.prefetch_factor = 3;
    loader.reconfigure(pacing);
    SUCCEED();
}

} // namespace
} // namespace lotus::service
