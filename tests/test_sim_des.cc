/**
 * @file
 * Unit tests for the discrete-event engine, awaitable queues, and
 * the counted core resource.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/des/engine.h"
#include "sim/des/queue.h"
#include "sim/des/resource.h"

namespace lotus::sim::des {
namespace {

TEST(Engine, EventsFireInTimeOrder)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(30, [&] { order.push_back(3); });
    engine.schedule(10, [&] { order.push_back(1); });
    engine.schedule(20, [&] { order.push_back(2); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, TiesBreakByScheduleOrder)
{
    Engine engine;
    std::vector<int> order;
    engine.schedule(5, [&] { order.push_back(1); });
    engine.schedule(5, [&] { order.push_back(2); });
    engine.schedule(5, [&] { order.push_back(3); });
    engine.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, NestedSchedulingWorks)
{
    Engine engine;
    std::vector<TimeNs> times;
    engine.schedule(10, [&] {
        times.push_back(engine.now());
        engine.schedule(engine.now() + 5,
                        [&] { times.push_back(engine.now()); });
    });
    engine.run();
    EXPECT_EQ(times, (std::vector<TimeNs>{10, 15}));
}

TEST(Engine, DelayCoroutine)
{
    Engine engine;
    std::vector<TimeNs> marks;
    auto proc = [](Engine &eng, std::vector<TimeNs> &out) -> Process {
        out.push_back(eng.now());
        co_await eng.delay(100);
        out.push_back(eng.now());
        co_await eng.delay(50);
        out.push_back(eng.now());
    };
    proc(engine, marks);
    engine.run();
    EXPECT_EQ(marks, (std::vector<TimeNs>{0, 100, 150}));
}

TEST(Engine, ZeroDelayDoesNotSuspend)
{
    Engine engine;
    bool done = false;
    auto proc = [](Engine &eng, bool &flag) -> Process {
        co_await eng.delay(0);
        flag = true;
    };
    proc(engine, done);
    EXPECT_TRUE(done); // completed synchronously
    engine.run();
}

TEST(SimQueue, FifoThroughCoroutines)
{
    Engine engine;
    SimQueue<int> queue(engine);
    std::vector<int> received;

    auto producer = [](Engine &eng, SimQueue<int> &q) -> Process {
        for (int i = 0; i < 5; ++i) {
            co_await eng.delay(10);
            co_await q.push(i);
        }
        q.close();
    };
    auto consumer = [](SimQueue<int> &q, std::vector<int> &out) -> Process {
        for (;;) {
            auto v = co_await q.pop();
            if (!v.has_value())
                break;
            out.push_back(*v);
        }
    };
    consumer(queue, received);
    producer(engine, queue);
    engine.run();
    EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimQueue, CapacityBlocksProducer)
{
    Engine engine;
    SimQueue<int> queue(engine, 1);
    std::vector<TimeNs> push_times;

    auto producer = [](Engine &eng, SimQueue<int> &q,
                       std::vector<TimeNs> &times) -> Process {
        for (int i = 0; i < 3; ++i) {
            co_await q.push(i);
            times.push_back(eng.now());
        }
    };
    auto consumer = [](Engine &eng, SimQueue<int> &q) -> Process {
        for (int i = 0; i < 3; ++i) {
            co_await eng.delay(100);
            co_await q.pop();
        }
    };
    producer(engine, queue, push_times);
    consumer(engine, queue);
    engine.run();
    // First push immediate; the rest gated by the consumer's pops.
    ASSERT_EQ(push_times.size(), 3u);
    EXPECT_EQ(push_times[0], 0);
    EXPECT_EQ(push_times[1], 100);
    EXPECT_EQ(push_times[2], 200);
}

TEST(SimQueue, CloseFailsBlockedPushAndDrainsItems)
{
    Engine engine;
    SimQueue<int> queue(engine, 1);
    bool push_result = true;
    auto producer = [](SimQueue<int> &q, bool &result) -> Process {
        co_await q.push(1); // fills capacity
        result = co_await q.push(2); // blocks, then fails on close
    };
    auto closer = [](Engine &eng, SimQueue<int> &q) -> Process {
        co_await eng.delay(10);
        q.close();
    };
    producer(queue, push_result);
    closer(engine, queue);
    engine.run();
    EXPECT_FALSE(push_result);
    // Buffered item still drains after close.
    bool drained = false;
    auto drainer = [](SimQueue<int> &q, bool &flag) -> Process {
        auto v = co_await q.pop();
        flag = v.has_value() && *v == 1;
        auto end = co_await q.pop();
        flag = flag && !end.has_value();
    };
    drainer(queue, drained);
    engine.run();
    EXPECT_TRUE(drained);
}

TEST(SimQueue, PopBlocksUntilPush)
{
    Engine engine;
    SimQueue<int> queue(engine);
    TimeNs pop_time = -1;
    auto consumer = [](Engine &eng, SimQueue<int> &q,
                       TimeNs &t) -> Process {
        auto v = co_await q.pop();
        EXPECT_EQ(*v, 42);
        t = eng.now();
    };
    auto producer = [](Engine &eng, SimQueue<int> &q) -> Process {
        co_await eng.delay(75);
        co_await q.push(42);
    };
    consumer(engine, queue, pop_time);
    producer(engine, queue);
    engine.run();
    EXPECT_EQ(pop_time, 75);
}

TEST(Resource, LimitsConcurrency)
{
    Engine engine;
    Resource cores(engine, 2);
    std::vector<TimeNs> start_times;

    auto worker = [](Engine &eng, Resource &res,
                     std::vector<TimeNs> &starts) -> Process {
        co_await res.acquire();
        starts.push_back(eng.now());
        co_await eng.delay(100);
        res.release();
    };
    for (int i = 0; i < 4; ++i)
        worker(engine, cores, start_times);
    engine.run();
    ASSERT_EQ(start_times.size(), 4u);
    EXPECT_EQ(start_times[0], 0);
    EXPECT_EQ(start_times[1], 0);
    EXPECT_EQ(start_times[2], 100);
    EXPECT_EQ(start_times[3], 100);
}

TEST(Resource, OccupancyAndBusyIntegral)
{
    Engine engine;
    Resource cores(engine, 4);
    auto worker = [](Engine &eng, Resource &res) -> Process {
        co_await res.acquire();
        EXPECT_GT(res.occupancy(), 0.0);
        co_await eng.delay(1000);
        res.release();
    };
    worker(engine, cores);
    worker(engine, cores);
    engine.run();
    // Two units busy for 1000 ns each.
    EXPECT_DOUBLE_EQ(cores.busyIntegral(), 2000.0);
    EXPECT_EQ(cores.inUse(), 0);
}

TEST(Resource, ReleaseWithoutAcquirePanics)
{
    Engine engine;
    Resource cores(engine, 1);
    EXPECT_DEATH(cores.release(), "release without acquire");
}

} // namespace
} // namespace lotus::sim::des
