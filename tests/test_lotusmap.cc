/**
 * @file
 * Tests for LotusMap: isolation profiling of real operations,
 * mapping construction/filtering, time-weighted metric splitting,
 * and ground-truth evaluation.
 */

#include <gtest/gtest.h>

#include "core/lotusmap/evaluate.h"
#include "core/lotusmap/isolation.h"
#include "core/lotusmap/mapper.h"
#include "core/lotusmap/splitter.h"
#include "hwcount/collection.h"
#include "hwcount/cost_model.h"
#include "image/codec/codec.h"
#include "image/resample.h"
#include "image/synth.h"

namespace lotus::core::lotusmap {
namespace {

using hwcount::KernelId;
using hwcount::KernelRegistry;

class LotusMapTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        KernelRegistry::instance().reset();
        hwcount::collection::reset();
        KernelRegistry::instance().setGroundTruthEnabled(false);
    }

    void TearDown() override { SetUp(); }
};

IsolationConfig
fastConfig()
{
    IsolationConfig config;
    config.runs = 6;
    config.warmup_runs = 1;
    config.sleep_gap = 200 * kMicrosecond;
    config.sampling.interval = 30 * kMicrosecond; // dense: fast tests
    config.sampling.seed = 5;
    return config;
}

TEST_F(LotusMapTest, IsolationCapturesDecodeKernels)
{
    Rng rng(1);
    const image::Image img = image::synthesize(rng, 96, 96);
    const std::string blob = image::codec::encode(img);

    IsolationRunner runner(fastConfig());
    const auto profile = runner.profileOp(
        "Loader", [&] { image::codec::decode(blob); });
    EXPECT_EQ(profile.op, "Loader");
    EXPECT_EQ(profile.runs, 6);
    // The heavyweight decode kernels must be observed.
    EXPECT_GT(profile.samples.count(KernelId::DecodeMcu), 0u);
    EXPECT_GT(profile.samples.count(KernelId::IdctBlock), 0u);
    // And no resize kernels (this op never resamples).
    EXPECT_EQ(profile.samples.count(KernelId::ResampleHorizontal), 0u);
}

TEST_F(LotusMapTest, IsolationCapturesResampleKernels)
{
    Rng rng(2);
    const image::Image img = image::synthesize(rng, 384, 384);
    // The SIMD-dispatched resample passes finish in a few µs each, so
    // sample densely enough to observe both passes at the fastest
    // tier (the point here is attribution, not duration).
    IsolationConfig config = fastConfig();
    config.sampling.interval = 5 * kMicrosecond;
    IsolationRunner runner(config);
    const auto profile = runner.profileOp(
        "RandomResizedCrop", [&] { image::resize(img, 64, 64); });
    EXPECT_GT(profile.samples.count(KernelId::ResampleHorizontal), 0u);
    EXPECT_GT(profile.samples.count(KernelId::ResampleVertical), 0u);
    EXPECT_EQ(profile.samples.count(KernelId::DecodeMcu), 0u);
}

TEST_F(LotusMapTest, MapperFiltersByConfig)
{
    IsolationProfile profile;
    profile.op = "Op";
    profile.runs = 10;
    profile.samples[KernelId::DecodeMcu] = 100;
    profile.runs_seen[KernelId::DecodeMcu] = 10;
    profile.samples[KernelId::IdctBlock] = 1; // rare
    profile.runs_seen[KernelId::IdctBlock] = 1;
    profile.samples[KernelId::AdamStep] = 50; // excluded
    profile.runs_seen[KernelId::AdamStep] = 10;

    MappingConfig config;
    config.min_samples = 2;
    config.min_run_fraction = 0.5;
    config.exclude = {KernelId::AdamStep};
    LotusMapper mapper(config);
    mapper.addProfile(profile);

    const auto &mapping = mapper.mappings().at(0);
    EXPECT_TRUE(mapping.contains(KernelId::DecodeMcu));
    EXPECT_FALSE(mapping.contains(KernelId::IdctBlock)); // too rare
    EXPECT_FALSE(mapping.contains(KernelId::AdamStep));  // excluded
}

TEST_F(LotusMapTest, MapperUnionKeepsInconsistentKernelsByDefault)
{
    IsolationProfile profile;
    profile.op = "Op";
    profile.runs = 20;
    profile.samples[KernelId::MemcpyBulk] = 1; // seen once in 20 runs
    profile.runs_seen[KernelId::MemcpyBulk] = 1;
    LotusMapper mapper; // defaults: min_samples = 1, no run fraction
    mapper.addProfile(profile);
    EXPECT_TRUE(mapper.mappings().at(0).contains(KernelId::MemcpyBulk));
}

TEST_F(LotusMapTest, OpsForKernelAndSharedFunctions)
{
    LotusMapper mapper;
    OpMapping loader;
    loader.op = "Loader";
    loader.kernels[KernelId::MemcpyBulk] = 10;
    loader.kernels[KernelId::DecodeMcu] = 90;
    OpMapping crop;
    crop.op = "RandomResizedCrop";
    crop.kernels[KernelId::MemcpyBulk] = 5;
    crop.kernels[KernelId::ResampleHorizontal] = 40;
    mapper.addMapping(loader);
    mapper.addMapping(crop);

    const auto shared = mapper.opsForKernel(KernelId::MemcpyBulk);
    ASSERT_EQ(shared.size(), 2u);
    EXPECT_EQ(shared[0], "Loader");
    EXPECT_EQ(mapper.opsForKernel(KernelId::DecodeMcu).size(), 1u);
    EXPECT_TRUE(mapper.opsForKernel(KernelId::AdamStep).empty());
}

TEST_F(LotusMapTest, DuplicateOpMappingPanics)
{
    LotusMapper mapper;
    OpMapping mapping;
    mapping.op = "X";
    mapper.addMapping(mapping);
    EXPECT_DEATH(mapper.addMapping(mapping), "duplicate mapping");
}

TEST_F(LotusMapTest, RenderTableAndJson)
{
    LotusMapper mapper;
    OpMapping loader;
    loader.op = "Loader";
    loader.kernels[KernelId::DecodeMcu] = 90;
    loader.kernels[KernelId::YccToRgb] = 30;
    mapper.addMapping(loader);
    const std::string table = mapper.renderTable();
    EXPECT_NE(table.find("decode_mcu"), std::string::npos);
    EXPECT_NE(table.find("liblotusjpeg.so.9"), std::string::npos);
    const std::string json = mapper.toJson();
    EXPECT_NE(json.find("\"Loader\":["), std::string::npos);
    EXPECT_NE(json.find("ycc_rgb_convert"), std::string::npos);
}

TEST_F(LotusMapTest, JsonRoundTripRestoresMapping)
{
    LotusMapper original;
    OpMapping loader;
    loader.op = "Loader";
    loader.kernels[KernelId::DecodeMcu] = 90;
    loader.kernels[KernelId::YccToRgb] = 30;
    OpMapping crop;
    crop.op = "RandomResizedCrop";
    crop.kernels[KernelId::ResampleHorizontal] = 12;
    original.addMapping(loader);
    original.addMapping(crop);

    const LotusMapper restored = LotusMapper::fromJson(original.toJson());
    ASSERT_EQ(restored.mappings().size(), 2u);
    EXPECT_TRUE(restored.mappings()[0].contains(KernelId::DecodeMcu));
    EXPECT_TRUE(restored.mappings()[0].contains(KernelId::YccToRgb));
    EXPECT_TRUE(
        restored.mappings()[1].contains(KernelId::ResampleHorizontal));
    EXPECT_EQ(restored.opsForKernel(KernelId::DecodeMcu),
              (std::vector<std::string>{"Loader"}));
}

TEST_F(LotusMapTest, FromJsonSkipsUnknownFunctions)
{
    const std::string json =
        "{\"Loader\":[{\"function\":\"decode_mcu\",\"library\":\"x\"},"
        "{\"function\":\"some_other_machines_fn\",\"library\":\"y\"}]}";
    const LotusMapper mapper = LotusMapper::fromJson(json);
    ASSERT_EQ(mapper.mappings().size(), 1u);
    EXPECT_EQ(mapper.mappings()[0].kernels.size(), 1u);
    EXPECT_TRUE(mapper.mappings()[0].contains(KernelId::DecodeMcu));
}

TEST_F(LotusMapTest, SplitterWeightsByOpTime)
{
    // memcpy maps to both ops; Loader has 3x the elapsed time, so it
    // receives 75% of memcpy's counters (the paper's weighting rule).
    LotusMapper mapper;
    OpMapping loader;
    loader.op = "Loader";
    loader.kernels[KernelId::MemcpyBulk] = 1;
    loader.kernels[KernelId::DecodeMcu] = 1;
    OpMapping to_tensor;
    to_tensor.op = "ToTensor";
    to_tensor.kernels[KernelId::MemcpyBulk] = 1;
    mapper.addMapping(loader);
    mapper.addMapping(to_tensor);

    std::vector<hwcount::CounterSet> per_kernel(hwcount::kNumKernels);
    per_kernel[static_cast<std::size_t>(KernelId::MemcpyBulk)].cycles =
        1000;
    per_kernel[static_cast<std::size_t>(KernelId::DecodeMcu)].cycles = 500;
    per_kernel[static_cast<std::size_t>(KernelId::AdamStep)].cycles = 77;

    const auto result = splitCounters(mapper, per_kernel,
                                      {{"Loader", 3.0}, {"ToTensor", 1.0}});
    EXPECT_EQ(result.per_op.at("Loader").cycles, 750u + 500u);
    EXPECT_EQ(result.per_op.at("ToTensor").cycles, 250u);
    // Unmapped kernels are reported, not silently dropped.
    EXPECT_EQ(result.unattributed.cycles, 77u);
}

TEST_F(LotusMapTest, SplitterEvenSplitWithoutTimings)
{
    LotusMapper mapper;
    OpMapping a, b;
    a.op = "A";
    a.kernels[KernelId::MemcpyBulk] = 1;
    b.op = "B";
    b.kernels[KernelId::MemcpyBulk] = 1;
    mapper.addMapping(a);
    mapper.addMapping(b);
    std::vector<hwcount::CounterSet> per_kernel(hwcount::kNumKernels);
    per_kernel[static_cast<std::size_t>(KernelId::MemcpyBulk)].cycles =
        100;
    const auto result = splitCounters(mapper, per_kernel, {});
    EXPECT_EQ(result.per_op.at("A").cycles, 50u);
    EXPECT_EQ(result.per_op.at("B").cycles, 50u);
}

TEST_F(LotusMapTest, EvaluateAgainstGroundTruth)
{
    auto &registry = KernelRegistry::instance();
    registry.setGroundTruthEnabled(true);
    const auto tag = registry.registerOp("EvalOp");
    VirtualClock clock(0);
    registry.setClock(&clock);
    {
        hwcount::OpTagScope op(tag);
        {
            hwcount::KernelScope scope(KernelId::DecodeMcu);
            clock.advance(1000);
        }
        {
            hwcount::KernelScope scope(KernelId::IdctBlock);
            clock.advance(100);
        }
    }
    registry.setClock(&SteadyClock::instance());
    const auto snapshot = registry.snapshot();

    LotusMapper mapper;
    OpMapping mapping;
    mapping.op = "EvalOp";
    mapping.kernels[KernelId::DecodeMcu] = 10;    // correct
    mapping.kernels[KernelId::MemsetBulk] = 3;    // spurious
    mapper.addMapping(mapping);                   // IdctBlock missed

    const auto quality = evaluateMapping(mapper, snapshot);
    ASSERT_EQ(quality.size(), 1u);
    EXPECT_DOUBLE_EQ(quality[0].precision, 0.5);
    EXPECT_DOUBLE_EQ(quality[0].recall, 0.5);
    // DecodeMcu is 1000 of 1100 ns of true self time.
    EXPECT_NEAR(quality[0].time_weighted_recall, 1000.0 / 1100.0, 1e-9);
    ASSERT_EQ(quality[0].missed.size(), 1u);
    EXPECT_EQ(quality[0].missed[0], KernelId::IdctBlock);
    ASSERT_EQ(quality[0].spurious.size(), 1u);
    EXPECT_EQ(quality[0].spurious[0], KernelId::MemsetBulk);
}

TEST_F(LotusMapTest, EndToEndMappingQualityOnRealKernels)
{
    // Isolation-profile real decode and resize ops, then check the
    // reconstruction covers the dominant kernels of each (evaluated
    // against ground truth).
    Rng rng(3);
    const image::Image img = image::synthesize(rng, 384, 384);
    const std::string blob = image::codec::encode(img);
    // Repeat the resize so its resample kernels stay well above the
    // evaluation's significance threshold even at the fastest SIMD
    // dispatch tier.
    const auto resize_work = [&] {
        for (int i = 0; i < 3; ++i)
            image::resize(img, 128, 128);
    };

    auto &registry = KernelRegistry::instance();
    const auto loader_tag = registry.registerOp("Loader");
    const auto resize_tag = registry.registerOp("Resize");

    IsolationRunner runner(fastConfig());
    LotusMapper mapper;
    mapper.addProfile(runner.profileOp("Loader", [&] {
        hwcount::OpTagScope op(loader_tag);
        image::codec::decode(blob);
    }));
    mapper.addProfile(runner.profileOp("Resize", [&] {
        hwcount::OpTagScope op(resize_tag);
        resize_work();
    }));

    // Ground-truth pass over the same work.
    registry.reset();
    registry.setGroundTruthEnabled(true);
    {
        hwcount::OpTagScope op(loader_tag);
        image::codec::decode(blob);
    }
    {
        hwcount::OpTagScope op(resize_tag);
        resize_work();
    }
    const auto snapshot = registry.snapshot();
    // Only score kernels that carry meaningful time: sampling cannot
    // and need not see sub-threshold functions (the splitting weights
    // absorb them).
    const auto quality =
        evaluateMapping(mapper, snapshot, 100 * kMicrosecond);
    for (const auto &q : quality) {
        EXPECT_GT(q.time_weighted_recall, 0.5) << q.op;
    }
}

} // namespace
} // namespace lotus::core::lotusmap
