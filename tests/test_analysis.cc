/**
 * @file
 * Tests for the analysis utilities (statistics details, text table
 * rendering) and for sim::GpuModel, the real-threaded accelerator
 * consumer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/strings.h"

#include "analysis/stats.h"
#include "analysis/table.h"
#include "pipeline/sample.h"
#include "sim/gpu_model.h"
#include "trace/logger.h"

namespace lotus {
namespace {

TEST(Stats, SummaryOfKnownData)
{
    const auto s = analysis::summarize({2.0, 4.0, 6.0, 8.0});
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.p50, 5.0);
    EXPECT_NEAR(s.stddev, std::sqrt(5.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.iqr(), 3.0); // p75 6.5 - p25 3.5
    EXPECT_NEAR(s.cv(), std::sqrt(5.0) / 5.0, 1e-12);
}

TEST(Stats, SingleValueAndEmpty)
{
    const auto one = analysis::summarize({7.0});
    EXPECT_DOUBLE_EQ(one.mean, 7.0);
    EXPECT_DOUBLE_EQ(one.p90, 7.0);
    EXPECT_DOUBLE_EQ(one.stddev, 0.0);
    const auto none = analysis::summarize({});
    EXPECT_EQ(none.count, 0u);
    EXPECT_DOUBLE_EQ(none.mean, 0.0);
}

TEST(Stats, FractionBoundaries)
{
    const std::vector<double> values = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(analysis::fractionBelow(values, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(analysis::fractionBelow(values, 3.5), 1.0);
    EXPECT_DOUBLE_EQ(analysis::fractionAtLeast(values, 2.0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(analysis::fractionBelow({}, 5.0), 0.0);
}

TEST(Stats, PercentileRangeChecked)
{
    EXPECT_DEATH(analysis::percentile({1.0}, 101.0), "percentile");
}

TEST(Table, RendersAlignedColumns)
{
    analysis::TextTable table({"op", "ms"});
    table.addRow({"Loader", "4.76"});
    table.addRow({"RandomResizedCrop", "1.11"});
    const std::string out = table.render();
    // Header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // Columns align: both value cells start at the same offset.
    const auto lines = strSplit(out, '\n');
    EXPECT_EQ(lines[2].find("4.76"), lines[3].find("1.11"));
    EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow)
{
    analysis::TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "row width");
}

TEST(GpuModel, ServiceTimeModel)
{
    sim::GpuConfig config;
    config.num_gpus = 4;
    config.time_per_sample = kMillisecond;
    config.base_time = 2 * kMillisecond;
    sim::GpuModel gpu(config);
    // DataParallel split: 1024 samples across 4 GPUs.
    EXPECT_EQ(gpu.serviceTime(1024), 2 * kMillisecond + 256 * kMillisecond);
    EXPECT_EQ(gpu.serviceTime(2), 2 * kMillisecond + 1 * kMillisecond);
}

TEST(GpuModel, ServicesAllSubmittedBatches)
{
    trace::TraceLogger logger;
    sim::GpuConfig config;
    config.time_per_sample = 100 * kMicrosecond;
    config.base_time = 0;
    config.jitter = 0.0;
    config.logger = &logger;
    sim::GpuModel gpu(config);
    for (int b = 0; b < 5; ++b) {
        pipeline::Batch batch;
        batch.batch_id = b;
        batch.data = tensor::Tensor(tensor::DType::F32, {2, 2});
        batch.labels = {1, 2};
        gpu.submit(std::move(batch));
    }
    gpu.drain();
    EXPECT_EQ(gpu.servicedBatches(), 5);
    int gpu_records = 0;
    for (const auto &record : logger.records()) {
        if (record.kind == trace::RecordKind::GpuCompute) {
            ++gpu_records;
            EXPECT_GE(record.duration, 200 * kMicrosecond);
        }
    }
    EXPECT_EQ(gpu_records, 5);
}

TEST(GpuModel, BackpressureBlocksSubmit)
{
    sim::GpuConfig config;
    config.time_per_sample = 0;
    config.base_time = 20 * kMillisecond;
    config.jitter = 0.0;
    config.max_outstanding = 1;
    sim::GpuModel gpu(config);
    const auto &clock = SteadyClock::instance();
    const TimeNs start = clock.now();
    for (int b = 0; b < 3; ++b) {
        pipeline::Batch batch;
        batch.batch_id = b;
        batch.data = tensor::Tensor(tensor::DType::F32, {1});
        gpu.submit(std::move(batch));
    }
    // With one slot, the third submit had to wait for ~one service.
    EXPECT_GE(clock.now() - start, 15 * kMillisecond);
    gpu.drain();
    EXPECT_EQ(gpu.servicedBatches(), 3);
}

} // namespace
} // namespace lotus
