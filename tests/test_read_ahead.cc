/**
 * @file
 * Read-ahead suite: the engine's window semantics (hits serve
 * prefetched bytes, misses fall back, depth bounds outstanding work,
 * cancel wakes blocked claims), loader integration across all three
 * fetch paths with bit-identical batches (cold and cache-warm),
 * ErrorPolicy composition over FaultyStore(RemoteStore), off-thread
 * IoEvent correlation, and option validation.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "dataflow/read_ahead.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "metrics/metrics.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/faulty_store.h"
#include "pipeline/image_folder.h"
#include "pipeline/remote_store.h"
#include "pipeline/store.h"
#include "pipeline/traced_store.h"
#include "pipeline/transforms/vision.h"
#include "trace/logger.h"

namespace lotus {
namespace {

using dataflow::DataLoader;
using dataflow::DataLoaderOptions;
using dataflow::ErrorPolicy;
using dataflow::LoaderError;
using dataflow::ReadAhead;
using dataflow::ReadAheadOptions;
using dataflow::Schedule;
using pipeline::BlobReadRequest;
using pipeline::FaultyStore;
using pipeline::FaultyStoreOptions;
using pipeline::InMemoryStore;
using pipeline::RemoteStore;
using pipeline::RemoteStoreOptions;

std::shared_ptr<InMemoryStore>
makePlainStore(int count)
{
    auto store = std::make_shared<InMemoryStore>();
    for (int i = 0; i < count; ++i)
        store->add(strFormat("payload-%04d", i));
    return store;
}

std::vector<BlobReadRequest>
sequentialPlan(int count)
{
    std::vector<BlobReadRequest> plan;
    for (int i = 0; i < count; ++i) {
        BlobReadRequest request;
        request.index = i;
        request.batch_id = i / 4;
        request.sample_index = i;
        plan.push_back(request);
    }
    return plan;
}

TEST(ReadAhead, ClaimsServePrefetchedBytesInAnyOrder)
{
    auto store = makePlainStore(24);
    ReadAheadOptions options;
    options.depth = 8;
    options.io_threads = 2;
    ReadAhead engine(store.get(), options);
    engine.startEpoch(sequentialPlan(24), nullptr);

    // Give the issuers time to fill the window between claim bursts:
    // a claim is only *guaranteed* to hit once its read was issued
    // (an outrun consumer legitimately misses and reads itself).
    const auto settle = [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    };
    settle();
    // In-order claims drain the full window; each matches the store.
    for (int i = 0; i < 8; ++i) {
        auto blob = engine.claim(i);
        ASSERT_TRUE(blob.has_value()) << "index " << i;
        EXPECT_EQ(blob->value(), store->read(i));
    }
    settle();
    for (int i = 8; i < 16; ++i) {
        auto blob = engine.claim(i);
        ASSERT_TRUE(blob.has_value()) << "index " << i;
        EXPECT_EQ(blob->value(), store->read(i));
    }
    settle();
    // Out-of-order (work-stealing shape): claims land regardless of
    // the order the window was filled in.
    for (const int i : {23, 17, 20, 16, 22, 18, 21, 19}) {
        auto blob = engine.claim(i);
        ASSERT_TRUE(blob.has_value()) << "index " << i;
        EXPECT_EQ(blob->value(), store->read(i));
    }
}

TEST(ReadAhead, UnplannedIndexMissesWithoutBlocking)
{
    auto store = makePlainStore(8);
    ReadAheadOptions options;
    options.depth = 4;
    options.io_threads = 1;
    ReadAhead engine(store.get(), options);
    engine.startEpoch(sequentialPlan(4), nullptr);
    // Let the issuer fill the window so claim(0) is a guaranteed hit.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    EXPECT_FALSE(engine.claim(7).has_value()); // never in the plan
    EXPECT_TRUE(engine.claim(0).has_value());
    EXPECT_FALSE(engine.claim(0).has_value()); // already consumed
}

TEST(ReadAhead, MissedIndexIsNeverIssuedLater)
{
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    auto store = makePlainStore(16);
    ReadAheadOptions options;
    options.depth = 2; // small window: most of the plan is unissued
    options.io_threads = 1;
    ReadAhead engine(store.get(), options);
    engine.startEpoch(sequentialPlan(16), nullptr);

    // Claim far ahead of the window: a miss, served synchronously by
    // the caller. The issuer must then skip index 15 — nobody will
    // consume it — so every issued read is one that got claimed and
    // nothing is stranded in (or wasted on) the window at epoch end.
    EXPECT_FALSE(engine.claim(15).has_value());
    std::uint64_t hits = 0;
    for (int i = 0; i < 15; ++i)
        hits += engine.claim(i).has_value() ? 1 : 0;
    EXPECT_EQ(registry.counter(dataflow::kReadAheadHitsMetric)->value(),
              hits);
    EXPECT_EQ(registry.counter(dataflow::kReadAheadIssuedMetric)->value(),
              hits);
    EXPECT_LE(hits, 15u);
    registry.reset();
}

TEST(ReadAhead, DepthBoundsOutstandingPrefetches)
{
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    auto store = makePlainStore(64);
    ReadAheadOptions options;
    options.depth = 4;
    options.io_threads = 2;
    ReadAhead engine(store.get(), options);
    engine.startEpoch(sequentialPlan(64), nullptr);

    // The instant store fills the window immediately; with no claims
    // the issuers stall at exactly `depth` outstanding blobs.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(registry.gauge(dataflow::kReadAheadInFlightMetric)->value(),
              4);
    EXPECT_EQ(registry.gauge(dataflow::kReadAheadDepthMetric)->value(), 4);
    EXPECT_EQ(registry.counter(dataflow::kReadAheadIssuedMetric)->value(),
              4u);

    // Draining re-opens the window; every issued read is accounted
    // as a hit (a claim that outruns the issuer misses and is then
    // skipped, never issued).
    std::uint64_t hits = 0;
    for (int i = 0; i < 64; ++i)
        hits += engine.claim(i).has_value() ? 1 : 0;
    EXPECT_GE(hits, 4u); // at least the pre-filled window
    EXPECT_EQ(registry.counter(dataflow::kReadAheadHitsMetric)->value(),
              hits);
    EXPECT_EQ(registry.counter(dataflow::kReadAheadIssuedMetric)->value(),
              hits);
    registry.reset();
}

TEST(ReadAhead, ClaimBlocksForInFlightReadThenHits)
{
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    auto inner = makePlainStore(8);
    RemoteStoreOptions remote_options;
    remote_options.rtt = 20 * kMillisecond;
    remote_options.bytes_per_ns = 0.0;
    RemoteStore remote(inner, remote_options);
    ReadAheadOptions options;
    options.depth = 8;
    options.io_threads = 1;
    ReadAhead engine(&remote, options);

    engine.startEpoch(sequentialPlan(8), nullptr);
    // Wait until the issuer has *registered* the first chunk (entries
    // counted by the in-flight gauge) but its modelled round trip is
    // still pending: the claim must then block for the read instead
    // of missing.
    auto *in_flight = registry.gauge(dataflow::kReadAheadInFlightMetric);
    for (int i = 0; i < 500 && in_flight->value() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_GT(in_flight->value(), 0);
    auto blob = engine.claim(0);
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(blob->value(), inner->read(0));
    registry.reset();
}

TEST(ReadAhead, CancelWakesBlockedClaimsAsMisses)
{
    auto inner = makePlainStore(4);
    RemoteStoreOptions remote_options;
    remote_options.rtt = 200 * kMillisecond; // long enough to race
    remote_options.bytes_per_ns = 0.0;
    RemoteStore remote(inner, remote_options);
    ReadAheadOptions options;
    options.depth = 4;
    options.io_threads = 1;
    ReadAhead engine(&remote, options);
    engine.startEpoch(sequentialPlan(4), nullptr);

    std::optional<Result<std::string>> claimed;
    std::thread claimer([&] { claimed = engine.claim(0); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const TimeNs cancel_at = SteadyClock::instance().now();
    engine.cancel();
    claimer.join();
    // The claim returned promptly as a miss instead of sitting out
    // the remaining ~180 ms of modelled round trip.
    EXPECT_LT(SteadyClock::instance().now() - cancel_at,
              100 * kMillisecond);
    EXPECT_FALSE(claimed.has_value());
}

TEST(ReadAhead, PrefetchedErrorsAreDeliveredOnClaim)
{
    auto faulty = std::make_shared<FaultyStore>(makePlainStore(8),
                                                FaultyStoreOptions{});
    faulty->inject(3, FaultyStore::Fault::kIoError);
    ReadAheadOptions options;
    options.depth = 8;
    options.io_threads = 1;
    ReadAhead engine(faulty.get(), options);
    engine.startEpoch(sequentialPlan(8), nullptr);
    // Instant store: the whole window is ready after a short settle.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    auto good = engine.claim(2);
    ASSERT_TRUE(good.has_value());
    EXPECT_TRUE(good->ok());
    auto bad = engine.claim(3);
    ASSERT_TRUE(bad.has_value());
    ASSERT_FALSE(bad->ok());
    EXPECT_EQ(bad->error().code, ErrorCode::kIoError);
}

TEST(ReadAhead, ValidatesOptionsFatally)
{
    auto store = makePlainStore(2);
    ReadAheadOptions bad_depth;
    bad_depth.depth = 0;
    EXPECT_EXIT(ReadAhead(store.get(), bad_depth),
                ::testing::ExitedWithCode(1), "depth");
    ReadAheadOptions bad_threads;
    bad_threads.io_threads = 0;
    EXPECT_EXIT(ReadAhead(store.get(), bad_threads),
                ::testing::ExitedWithCode(1), "io_threads");
}

// --- Loader integration ----------------------------------------------

std::shared_ptr<InMemoryStore>
makeEncodedStore(int count)
{
    auto store = std::make_shared<InMemoryStore>();
    Rng rng(55);
    for (int i = 0; i < count; ++i)
        store->add(
            image::codec::encode(image::synthesize(rng, 16, 16)));
    return store;
}

/** ImageFolder over @p store whose transform chain starts with a
 *  random flip, so the cacheable prefix is decode-only and cache-warm
 *  epochs still draw from the per-sample rng stream. */
std::shared_ptr<pipeline::ImageFolderDataset>
makeDataset(std::shared_ptr<const pipeline::BlobStore> store)
{
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(
        std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::make_shared<pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/1 << 20);
}

/** Two epochs of payload bytes + labels (cold, then cache-warm when
 *  the options enable a cache). */
std::vector<std::vector<std::uint8_t>>
twoEpochBytes(const std::shared_ptr<pipeline::Dataset> &dataset,
              DataLoaderOptions options)
{
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(), options);
    std::vector<std::vector<std::uint8_t>> epochs;
    for (int epoch = 0; epoch < 2; ++epoch) {
        loader.startEpoch();
        std::vector<std::uint8_t> bytes;
        while (auto batch = loader.next()) {
            const std::uint8_t *raw = batch->data.raw();
            bytes.insert(bytes.end(), raw, raw + batch->data.byteSize());
            for (const std::int64_t label : batch->labels) {
                const auto *p =
                    reinterpret_cast<const std::uint8_t *>(&label);
                bytes.insert(bytes.end(), p, p + sizeof(label));
            }
        }
        epochs.push_back(std::move(bytes));
    }
    return epochs;
}

TEST(ReadAheadLoader, BitIdenticalAcrossPathsColdAndCacheWarm)
{
    auto store = makeEncodedStore(48);
    RemoteStoreOptions remote_options;
    remote_options.rtt = 200 * kMicrosecond;
    remote_options.bytes_per_ns = 0.0;
    auto remote =
        std::make_shared<RemoteStore>(std::move(store), remote_options);
    auto dataset = makeDataset(remote);

    DataLoaderOptions reference;
    reference.batch_size = 4;
    reference.num_workers = 2;
    reference.shuffle = true;
    reference.seed = 77;
    reference.cache_policy = dataflow::CachePolicy::kMemory;
    reference.cache_budget_bytes = 64 << 20;
    const auto expected = twoEpochBytes(dataset, reference);
    EXPECT_NE(expected[0], expected[1]); // epochs draw differently

    struct PathCase
    {
        const char *name;
        int workers;
        Schedule schedule;
    };
    const PathCase cases[] = {
        {"round-robin", 2, Schedule::kRoundRobin},
        {"work-stealing", 2, Schedule::kWorkStealing},
        {"sync", 0, Schedule::kRoundRobin},
    };
    for (const PathCase &path : cases) {
        DataLoaderOptions options = reference;
        options.num_workers = path.workers;
        options.schedule = path.schedule;
        options.read_ahead_depth = 8;
        options.io_threads = 2;
        EXPECT_EQ(twoEpochBytes(dataset, options), expected)
            << path.name;
    }
}

TEST(ReadAheadLoader, HitsDominateASequentialEpoch)
{
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    auto dataset = makeDataset(makeEncodedStore(32));
    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 1;
    options.read_ahead_depth = 8;
    options.io_threads = 1;
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      options);
    ASSERT_NE(loader.readAhead(), nullptr);
    std::int64_t samples = 0;
    while (auto batch = loader.next())
        samples += batch->size();
    EXPECT_EQ(samples, 32);

    // Decode dominates the instant store, so the window stays ahead
    // of the fetch path for all but (at racy worst) the first few
    // samples; a missed index is never issued later, so issued +
    // synchronous fallbacks still covers the epoch exactly once.
    const auto hits =
        registry.counter(dataflow::kReadAheadHitsMetric)->value();
    const auto misses =
        registry.counter(dataflow::kReadAheadMissesMetric)->value();
    EXPECT_EQ(hits + misses, 32u);
    EXPECT_GE(hits, 24u);
    EXPECT_EQ(registry.counter(dataflow::kReadAheadIssuedMetric)->value(),
              hits);
    registry.reset();
}

TEST(ReadAheadLoader, RetryAbsorbsTransientFaultsThroughReadAhead)
{
    // FaultyStore(RemoteStore): the prefetched read serves the
    // transient error; the retry's claim misses (already consumed)
    // and re-reads synchronously, clearing the fault — identical to
    // the synchronous path's behavior.
    FaultyStoreOptions fault_options;
    fault_options.transient_failures = 2;
    RemoteStoreOptions remote_options;
    remote_options.rtt = 100 * kMicrosecond;
    remote_options.bytes_per_ns = 0.0;
    auto remote = std::make_shared<RemoteStore>(makeEncodedStore(16),
                                                remote_options);
    auto faulty = std::make_shared<FaultyStore>(remote, fault_options);
    faulty->inject(5, FaultyStore::Fault::kIoError);
    auto dataset = makeDataset(faulty);

    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    options.error_policy = ErrorPolicy::kRetry;
    options.max_retries = 2;
    options.read_ahead_depth = 8;
    options.io_threads = 2;
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      options);
    std::multiset<std::int64_t> labels;
    while (auto batch = loader.next()) {
        for (const auto label : batch->labels)
            labels.insert(label);
    }
    EXPECT_EQ(labels.size(), 16u);
    for (std::int64_t i = 0; i < 16; ++i)
        EXPECT_EQ(labels.count(i), 1u) << "label " << i;
}

TEST(ReadAheadLoader, SkipRefillsComposeWithReadAhead)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(24),
                                                FaultyStoreOptions{});
    faulty->inject(7, FaultyStore::Fault::kIoError); // permanent
    auto dataset = makeDataset(faulty);

    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    options.error_policy = ErrorPolicy::kSkip;
    options.read_ahead_depth = 6;
    options.io_threads = 2;
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      options);
    std::multiset<std::int64_t> labels;
    while (auto batch = loader.next()) {
        for (const auto label : batch->labels)
            labels.insert(label);
    }
    EXPECT_EQ(labels.size(), 24u);
    EXPECT_EQ(labels.count(7), 0u); // dropped
    EXPECT_EQ(labels.count(8), 2u); // its forward neighbor, twice
}

TEST(ReadAheadLoader, PersistentTimeoutsSurfaceAsLoaderError)
{
    // Every remote read misses its deadline: kRetry burns its bounded
    // attempts on the (transient) kTimeout and then fails the epoch.
    RemoteStoreOptions remote_options;
    remote_options.rtt = 5 * kMillisecond;
    remote_options.bytes_per_ns = 0.0;
    remote_options.deadline = kMillisecond;
    auto remote = std::make_shared<RemoteStore>(makeEncodedStore(8),
                                                remote_options);
    auto dataset = makeDataset(remote);

    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 1;
    options.error_policy = ErrorPolicy::kRetry;
    options.max_retries = 1;
    options.read_ahead_depth = 4;
    options.io_threads = 1;
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      options);
    bool threw = false;
    try {
        while (loader.next().has_value()) {
        }
    } catch (const LoaderError &e) {
        threw = true;
        EXPECT_EQ(e.error().code, ErrorCode::kTimeout);
        EXPECT_EQ(e.error().stage, "store");
    }
    EXPECT_TRUE(threw);
}

TEST(ReadAheadLoader, IoEventsFromIoThreadsCorrelateWithSamples)
{
    trace::TraceLogger logger;
    RemoteStoreOptions remote_options;
    remote_options.rtt = 100 * kMicrosecond;
    remote_options.bytes_per_ns = 0.0;
    auto remote = std::make_shared<RemoteStore>(makeEncodedStore(16),
                                                remote_options);
    auto traced = std::make_shared<pipeline::TracedStore>(remote);
    auto dataset = makeDataset(traced);

    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 1;
    options.logger = &logger;
    options.read_ahead_depth = 8;
    options.io_threads = 2;
    DataLoader loader(dataset, std::make_shared<pipeline::StackCollate>(),
                      options);
    std::int64_t samples = 0;
    while (auto batch = loader.next())
        samples += batch->size();
    ASSERT_EQ(samples, 16);

    const auto worker_pids = loader.workerPids();
    int io_events = 0;
    int off_thread = 0;
    for (const auto &record : logger.records()) {
        if (record.kind != trace::RecordKind::IoEvent)
            continue;
        ++io_events;
        // Correlation comes from the BlobReadRequest, not the issuing
        // thread: shuffle=false, so sample i lives in batch i / 4.
        ASSERT_GE(record.sample_index, 0);
        ASSERT_LT(record.sample_index, 16);
        EXPECT_EQ(record.batch_id, record.sample_index / 4);
        bool is_worker = record.pid == loader.mainPid();
        for (const auto pid : worker_pids)
            is_worker = is_worker || record.pid == pid;
        off_thread += is_worker ? 0 : 1;
    }
    EXPECT_EQ(io_events, 16);
    // The reads actually moved off the fetch threads.
    EXPECT_GT(off_thread, 0);
}

TEST(ReadAheadLoader, ValidationRequiresMatchedOptions)
{
    auto dataset = makeDataset(makeEncodedStore(4));
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions depth_only;
    depth_only.read_ahead_depth = 4;
    EXPECT_EXIT(DataLoader(dataset, collate, depth_only),
                ::testing::ExitedWithCode(1), "together");
    DataLoaderOptions threads_only;
    threads_only.io_threads = 2;
    EXPECT_EXIT(DataLoader(dataset, collate, threads_only),
                ::testing::ExitedWithCode(1), "together");
    DataLoaderOptions negative;
    negative.read_ahead_depth = -1;
    EXPECT_EXIT(DataLoader(dataset, collate, negative),
                ::testing::ExitedWithCode(1), "read_ahead_depth");
}

/** Map-style dataset without a blob store (synthetic samples). */
class SyntheticDataset : public pipeline::Dataset
{
  public:
    std::int64_t size() const override { return 8; }

    pipeline::Sample
    get(std::int64_t index, pipeline::PipelineContext &ctx) const override
    {
        (void)ctx;
        pipeline::Sample sample;
        sample.label = index;
        sample.data = tensor::Tensor(tensor::DType::F32, {4});
        return sample;
    }
};

TEST(ReadAheadLoader, DatasetWithoutBlobStoreRunsWithoutEngine)
{
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 1;
    options.read_ahead_depth = 4;
    options.io_threads = 1;
    DataLoader loader(std::make_shared<SyntheticDataset>(),
                      std::make_shared<pipeline::StackCollate>(), options);
    EXPECT_EQ(loader.readAhead(), nullptr); // warned and disabled
    std::int64_t batches = 0;
    while (loader.next().has_value())
        ++batches;
    EXPECT_EQ(batches, 4);
}

TEST(ReadAhead, IoBatchDerivationCoversDegenerateWindows)
{
    auto store = makePlainStore(8);
    const auto io_batch_for = [&](int depth, int io_threads,
                                  int io_batch = 0) {
        ReadAheadOptions options;
        options.depth = depth;
        options.io_threads = io_threads;
        options.io_batch = io_batch;
        ReadAhead engine(store.get(), options);
        return engine.ioBatch();
    };
    // depth < 2 * io_threads divides to 0; the lower clamp floors the
    // chunk at 1 so every issuer can still make one-blob progress.
    EXPECT_EQ(io_batch_for(1, 4), 1);
    EXPECT_EQ(io_batch_for(1, 1), 1);
    EXPECT_EQ(io_batch_for(7, 4), 1);
    EXPECT_EQ(io_batch_for(2, 4), 1);
    // Nominal shape: two chunks per issuer.
    EXPECT_EQ(io_batch_for(32, 2), 8);
    EXPECT_EQ(io_batch_for(16, 2), 4);
    // The per-call latency cap.
    EXPECT_EQ(io_batch_for(256, 2), 16);
    // Explicit io_batch is honored but can never exceed the window.
    EXPECT_EQ(io_batch_for(4, 1, 3), 3);
    EXPECT_EQ(io_batch_for(4, 1, 100), 4);
}

TEST(ReadAhead, DepthOneWindowWithManyIssuersDeliversEverything)
{
    // The most degenerate config: a single-slot window fought over by
    // four issuers. Every claim must resolve (hit, block-then-hit, or
    // miss) with correct bytes and without deadlock.
    auto store = makePlainStore(32);
    ReadAheadOptions options;
    options.depth = 1;
    options.io_threads = 4;
    ReadAhead engine(store.get(), options);
    EXPECT_EQ(engine.ioBatch(), 1);
    engine.startEpoch(sequentialPlan(32), nullptr);
    for (int i = 0; i < 32; ++i) {
        auto blob = engine.claim(i);
        if (blob.has_value()) {
            EXPECT_EQ(blob->value(), store->read(i)) << "index " << i;
        }
    }
}

} // namespace
} // namespace lotus
