/**
 * @file
 * Differential tests for the SIMD dispatch layer (src/simd/).
 *
 * The correctness contract is strict: every tier must produce output
 * *bit-identical* to the scalar tier for every kernel in the table
 * (the scalar tier is in turn held within |diff| <= 1 of a float
 * reference, checked here too). The full suite loops over every tier
 * the host supports; unsupported tiers are skipped, so the tests are
 * meaningful on any machine.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "hwcount/kernel_id.h"
#include "image/codec/codec.h"
#include "image/image.h"
#include "image/resample.h"
#include "image/synth.h"
#include "memory/buffer_pool.h"
#include "simd/dispatch.h"

namespace lotus::simd {
namespace {

std::vector<Tier>
supportedTiers()
{
    std::vector<Tier> tiers;
    for (const Tier tier : {Tier::Scalar, Tier::Sse4, Tier::Avx2}) {
        if (tierSupported(tier))
            tiers.push_back(tier);
    }
    return tiers;
}

/** Run @p fn(dst) under @p tier and return dst's bytes. */
template <typename Fn>
std::vector<std::uint8_t>
runUnderTier(Tier tier, std::size_t out_bytes, Fn &&fn)
{
    ScopedTier scoped(tier);
    memory::PooledArray<std::uint8_t> out(out_bytes, /*zero=*/true);
    fn(out.data());
    return std::vector<std::uint8_t>(out.begin(), out.end());
}

/** Compare every supported tier's output against the scalar tier's,
 *  byte for byte. */
template <typename Fn>
void
expectTiersBitIdentical(std::size_t out_bytes, Fn &&fn, const char *what)
{
    const auto reference = runUnderTier(Tier::Scalar, out_bytes, fn);
    for (const Tier tier : supportedTiers()) {
        if (tier == Tier::Scalar)
            continue;
        const auto output = runUnderTier(tier, out_bytes, fn);
        ASSERT_EQ(output.size(), reference.size());
        for (std::size_t i = 0; i < output.size(); ++i) {
            ASSERT_EQ(output[i], reference[i])
                << what << " diverges from scalar at byte " << i
                << " under tier " << tierName(tier);
        }
    }
}

TEST(SimdDispatchTest, TierIntrospection)
{
    EXPECT_TRUE(tierSupported(Tier::Scalar));
    EXPECT_TRUE(tierSupported(activeTier()));
    EXPECT_STREQ(tierName(Tier::Scalar), "scalar");
    EXPECT_STREQ(tierName(Tier::Sse4), "sse4");
    EXPECT_STREQ(tierName(Tier::Avx2), "avx2");

    Tier parsed = Tier::Scalar;
    EXPECT_TRUE(tierFromName("avx2", parsed));
    EXPECT_EQ(parsed, Tier::Avx2);
    EXPECT_TRUE(tierFromName("sse4", parsed));
    EXPECT_EQ(parsed, Tier::Sse4);
    EXPECT_FALSE(tierFromName("avx512", parsed));
    EXPECT_FALSE(tierFromName("", parsed));
}

TEST(SimdDispatchTest, ScopedTierSwitchesAndRestores)
{
    const Tier before = activeTier();
    {
        ScopedTier scoped(Tier::Scalar);
        EXPECT_EQ(activeTier(), Tier::Scalar);
    }
    EXPECT_EQ(activeTier(), before);
}

TEST(SimdDispatchTest, TierSuffixedSymbolsResolveToBaseKernels)
{
    using hwcount::KernelId;
    EXPECT_EQ(hwcount::kernelByName("ycc_rgb_convert"), KernelId::YccToRgb);
    EXPECT_EQ(hwcount::kernelByName("ycc_rgb_convert_avx2"),
              KernelId::YccToRgb);
    EXPECT_EQ(hwcount::kernelByName("ImagingResampleVertical_8bpc_sse4"),
              KernelId::ResampleVertical);
    EXPECT_EQ(hwcount::kernelByName("jpeg_idct_islow_avx2"),
              KernelId::IdctBlock);
    EXPECT_EQ(hwcount::kernelByName("no_such_kernel_avx2"),
              KernelId::Invalid);
}

TEST(SimdDispatchTest, YccRgbRowMatchesScalarBitExact)
{
    Rng rng(11);
    for (const int width : {1, 7, 8, 16, 37, 500}) {
        memory::PooledArray<std::int16_t> y(static_cast<std::size_t>(width));
        memory::PooledArray<std::int16_t> cb(
            static_cast<std::size_t>(width));
        memory::PooledArray<std::int16_t> cr(
            static_cast<std::size_t>(width));
        for (int i = 0; i < width; ++i) {
            y[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
                rng.uniformInt(0, kYccSampleMax));
            cb[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
                rng.uniformInt(0, kYccSampleMax));
            cr[static_cast<std::size_t>(i)] = static_cast<std::int16_t>(
                rng.uniformInt(0, kYccSampleMax));
        }
        expectTiersBitIdentical(
            static_cast<std::size_t>(width) * 3,
            [&](std::uint8_t *dst) {
                kernels().ycc_rgb_row(y.data(), cb.data(), cr.data(), dst,
                                      width);
            },
            "ycc_rgb_row");

        // Scalar itself stays within 1 of the float conversion.
        ScopedTier scoped(Tier::Scalar);
        memory::PooledArray<std::uint8_t> out(
            static_cast<std::size_t>(width) * 3, /*zero=*/true);
        kernels().ycc_rgb_row(y.data(), cb.data(), cr.data(), out.data(),
                              width);
        for (int i = 0; i < width; ++i) {
            const double fy = y[static_cast<std::size_t>(i)] / 16.0;
            const double fcb = cb[static_cast<std::size_t>(i)] / 16.0 - 128;
            const double fcr = cr[static_cast<std::size_t>(i)] / 16.0 - 128;
            const double ref[3] = {
                fy + 1.402 * fcr,
                fy - 0.344136 * fcb - 0.714136 * fcr,
                fy + 1.772 * fcb,
            };
            for (int c = 0; c < 3; ++c) {
                const double clamped =
                    std::min(255.0, std::max(0.0, std::round(ref[c])));
                EXPECT_NEAR(out[static_cast<std::size_t>(i * 3 + c)],
                            clamped, 1.0)
                    << "pixel " << i << " channel " << c;
            }
        }
    }
}

TEST(SimdDispatchTest, UpsampleRowMatchesScalarBitExact)
{
    Rng rng(12);
    for (const int half_width : {1, 2, 9, 16, 33, 250}) {
        for (const int weight_near : {3, 4}) {
            for (const int trim : {0, 1}) {
                const int out_width = 2 * half_width - trim;
                if (out_width <= 0)
                    continue;
                memory::PooledArray<std::int16_t> near_row(
                    static_cast<std::size_t>(half_width));
                memory::PooledArray<std::int16_t> far_row(
                    static_cast<std::size_t>(half_width));
                for (int i = 0; i < half_width; ++i) {
                    near_row[static_cast<std::size_t>(i)] =
                        static_cast<std::int16_t>(
                            rng.uniformInt(0, kYccSampleMax));
                    far_row[static_cast<std::size_t>(i)] =
                        static_cast<std::int16_t>(
                            rng.uniformInt(0, kYccSampleMax));
                }
                expectTiersBitIdentical(
                    static_cast<std::size_t>(out_width) * sizeof(std::int16_t),
                    [&](std::uint8_t *raw) {
                        memory::PooledArray<std::int16_t> scratch(
                            static_cast<std::size_t>(half_width) + 16,
                            /*zero=*/false);
                        kernels().upsample_h2v2_row(
                            near_row.data(), far_row.data(), weight_near,
                            half_width, out_width, scratch.data(),
                            reinterpret_cast<std::int16_t *>(raw));
                    },
                    "upsample_h2v2_row");
            }
        }
    }
}

TEST(SimdDispatchTest, IdctStoreBlockMatchesScalarBitExact)
{
    Rng rng(13);
    for (const int stride : {8, 11, 64}) {
        float block[64];
        for (auto &v : block)
            v = static_cast<float>(rng.uniform(-300.0, 300.0));
        // Include values that clamp on both ends.
        block[0] = -500.0f;
        block[63] = 900.0f;
        expectTiersBitIdentical(
            static_cast<std::size_t>(8 * stride) * sizeof(std::int16_t),
            [&](std::uint8_t *raw) {
                kernels().idct_store_block(
                    block, reinterpret_cast<std::int16_t *>(raw), stride);
            },
            "idct_store_block");
    }
}

TEST(SimdDispatchTest, ResampleHorizontalRowMatchesScalarAndReference)
{
    Rng rng(14);
    const int in_width = 61;
    memory::PooledArray<std::uint8_t> src(
        static_cast<std::size_t>(in_width) * 3, /*zero=*/false);
    for (auto &byte : src)
        byte = static_cast<std::uint8_t>(rng.nextBelow(256));

    for (const int out_width : {1, 3, 8, 24, 57}) {
        // Synthesize flattened windows with varying tap counts whose
        // fixed weights sum exactly to 1 << kResampleWeightBits.
        std::vector<std::int32_t> first, offset, count, weights;
        for (int x = 0; x < out_width; ++x) {
            const int taps =
                static_cast<int>(rng.uniformInt(1, 5));
            const int start = static_cast<int>(
                rng.uniformInt(0, in_width - taps));
            first.push_back(start);
            offset.push_back(static_cast<std::int32_t>(weights.size()));
            count.push_back(taps);
            std::int32_t remaining = 1 << kResampleWeightBits;
            for (int k = 0; k < taps; ++k) {
                const std::int32_t w =
                    k + 1 == taps
                        ? remaining
                        : static_cast<std::int32_t>(
                              rng.uniformInt(0, remaining));
                weights.push_back(w);
                remaining -= w;
            }
        }
        expectTiersBitIdentical(
            static_cast<std::size_t>(out_width) * 3,
            [&](std::uint8_t *dst) {
                kernels().resample_h_rgb_row(src.data(), dst, out_width,
                                             first.data(), offset.data(),
                                             count.data(), weights.data());
            },
            "resample_h_rgb_row");

        // Scalar vs float accumulation of the same weights.
        ScopedTier scoped(Tier::Scalar);
        memory::PooledArray<std::uint8_t> out(
            static_cast<std::size_t>(out_width) * 3, /*zero=*/true);
        kernels().resample_h_rgb_row(src.data(), out.data(), out_width,
                                     first.data(), offset.data(),
                                     count.data(), weights.data());
        for (int x = 0; x < out_width; ++x) {
            for (int c = 0; c < 3; ++c) {
                double acc = 0.0;
                for (int k = 0; k < count[static_cast<std::size_t>(x)];
                     ++k) {
                    const auto w =
                        weights[static_cast<std::size_t>(
                            offset[static_cast<std::size_t>(x)] + k)];
                    const auto s =
                        src[static_cast<std::size_t>(
                            (first[static_cast<std::size_t>(x)] + k) * 3 +
                            c)];
                    acc += static_cast<double>(w) /
                           (1 << kResampleWeightBits) * s;
                }
                const double clamped =
                    std::min(255.0, std::max(0.0, std::round(acc)));
                EXPECT_NEAR(out[static_cast<std::size_t>(x * 3 + c)],
                            clamped, 1.0)
                    << "pixel " << x << " channel " << c;
            }
        }
    }
}

TEST(SimdDispatchTest, ResampleVerticalRowMatchesScalarBitExact)
{
    Rng rng(15);
    for (const int row_bytes : {1, 16, 31, 32, 100, 673}) {
        for (const int taps : {1, 2, 4, 7}) {
            const auto stride =
                static_cast<std::ptrdiff_t>(row_bytes) + 13;
            memory::PooledArray<std::uint8_t> src(
                static_cast<std::size_t>(stride) *
                    static_cast<std::size_t>(taps),
                /*zero=*/false);
            for (auto &byte : src)
                byte = static_cast<std::uint8_t>(rng.nextBelow(256));
            std::vector<std::int32_t> weights;
            std::int32_t remaining = 1 << kResampleWeightBits;
            for (int k = 0; k < taps; ++k) {
                const std::int32_t w =
                    k + 1 == taps ? remaining
                                  : static_cast<std::int32_t>(
                                        rng.uniformInt(0, remaining));
                weights.push_back(w);
                remaining -= w;
            }
            expectTiersBitIdentical(
                static_cast<std::size_t>(row_bytes),
                [&](std::uint8_t *dst) {
                    kernels().resample_v_row(src.data(), stride, taps,
                                             weights.data(), dst,
                                             row_bytes);
                },
                "resample_v_row");
        }
    }
}

TEST(SimdDispatchTest, CastAndNormalizeMatchScalarBitExact)
{
    Rng rng(16);
    for (const std::int64_t n : {1, 7, 8, 15, 64, 1003}) {
        memory::PooledArray<std::uint8_t> src(static_cast<std::size_t>(n),
                                              /*zero=*/false);
        for (auto &byte : src)
            byte = static_cast<std::uint8_t>(rng.nextBelow(256));
        expectTiersBitIdentical(
            static_cast<std::size_t>(n) * sizeof(float),
            [&](std::uint8_t *raw) {
                kernels().cast_u8_f32(src.data(),
                                      reinterpret_cast<float *>(raw), n,
                                      1.0f / 255.0f);
            },
            "cast_u8_f32");

        memory::PooledArray<float> base(static_cast<std::size_t>(n),
                                        /*zero=*/false);
        for (std::int64_t i = 0; i < n; ++i)
            base[static_cast<std::size_t>(i)] =
                static_cast<float>(rng.uniform(-2.0, 2.0));
        expectTiersBitIdentical(
            static_cast<std::size_t>(n) * sizeof(float),
            [&](std::uint8_t *raw) {
                auto *data = reinterpret_cast<float *>(raw);
                std::memcpy(data, base.data(),
                            static_cast<std::size_t>(n) * sizeof(float));
                kernels().normalize_f32(data, n, 0.485f, 1.0f / 0.229f);
            },
            "normalize_f32");
    }
}

TEST(SimdDispatchTest, CopyBytesMatchesScalarIncludingStreaming)
{
    Rng rng(17);
    // 3 MiB exercises the AVX2 non-temporal streaming path; the odd
    // small sizes exercise heads and tails.
    for (const std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{31}, std::size_t{33},
          std::size_t{4096}, std::size_t{3} << 20}) {
        memory::PooledArray<std::uint8_t> src(n + 7, /*zero=*/false);
        for (auto &byte : src)
            byte = static_cast<std::uint8_t>(rng.nextBelow(256));
        expectTiersBitIdentical(
            n + 7,
            [&](std::uint8_t *dst) {
                // Deliberately unaligned source and destination.
                kernels().copy_bytes(src.data() + 7, dst + 7,
                                     n > 0 ? n - 1 : 0);
            },
            "copy_bytes");
    }
}

TEST(SimdDispatchTest, DecodeAndResizeBitIdenticalAcrossTiers)
{
    // End-to-end: the full JPEG decode and both resample passes go
    // through the dispatch table; every tier must reproduce the
    // scalar pipeline bit for bit.
    Rng rng(18);
    const image::Image source = image::synthesize(rng, 163, 117);
    const std::string blob = image::codec::encode(source);

    std::vector<std::uint8_t> reference;
    for (const Tier tier : supportedTiers()) {
        ScopedTier scoped(tier);
        const image::Image decoded = image::codec::decode(blob);
        const image::Image resized = image::resize(decoded, 96, 64);
        std::vector<std::uint8_t> bytes(decoded.raw(),
                                        decoded.raw() + decoded.byteSize());
        bytes.insert(bytes.end(), resized.raw(),
                     resized.raw() + resized.byteSize());
        if (tier == Tier::Scalar) {
            reference = std::move(bytes);
            continue;
        }
        ASSERT_FALSE(reference.empty());
        ASSERT_EQ(bytes.size(), reference.size());
        EXPECT_EQ(bytes, reference)
            << "tier " << tierName(tier)
            << " diverges from scalar on decode+resize";
    }
}

} // namespace
} // namespace lotus::simd
