/**
 * @file
 * Property-based tests: invariants checked across randomized and
 * parameterized sweeps (statistics, the capture-probability formula
 * vs Monte Carlo, queue FIFO under random interleavings, tensor op
 * algebra, DES determinism).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "analysis/stats.h"
#include "common/mpmc_queue.h"
#include "common/rng.h"
#include "core/lotustrace/analysis.h"
#include "hwcount/sampling_driver.h"
#include "sim/loader_sim.h"
#include "tensor/ops.h"

namespace lotus {
namespace {

// --- Statistics invariants -------------------------------------------

class StatsProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(StatsProperty, SummaryInvariants)
{
    Rng rng(GetParam());
    std::vector<double> values;
    const int n = static_cast<int>(rng.uniformInt(1, 500));
    for (int i = 0; i < n; ++i)
        values.push_back(rng.logNormalFromMoments(10.0, 8.0));
    const auto s = analysis::summarize(values);
    EXPECT_EQ(s.count, static_cast<std::uint64_t>(n));
    EXPECT_LE(s.min, s.p25);
    EXPECT_LE(s.p25, s.p50);
    EXPECT_LE(s.p50, s.p75);
    EXPECT_LE(s.p75, s.p90);
    EXPECT_LE(s.p90, s.p99);
    EXPECT_LE(s.p99, s.max);
    EXPECT_GE(s.mean, s.min);
    EXPECT_LE(s.mean, s.max);
    EXPECT_GE(s.stddev, 0.0);
    EXPECT_GE(s.iqr(), 0.0);
    // fractionBelow is a CDF: monotone in the threshold.
    EXPECT_LE(analysis::fractionBelow(values, s.p25 + 1e-9), 1.0);
    EXPECT_LE(analysis::fractionBelow(values, 5.0),
              analysis::fractionBelow(values, 50.0));
    EXPECT_NEAR(analysis::fractionBelow(values, 1e18) +
                    analysis::fractionAtLeast(values, 1e18),
                1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(StatsProperty, PercentileMatchesExactForKnownData)
{
    std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    EXPECT_DOUBLE_EQ(analysis::percentile(data, 0), 1.0);
    EXPECT_DOUBLE_EQ(analysis::percentile(data, 100), 10.0);
    EXPECT_DOUBLE_EQ(analysis::percentile(data, 50), 5.5);
}

// --- Capture probability vs Monte Carlo ------------------------------

class CaptureFormula
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CaptureFormula, MatchesMonteCarloSampling)
{
    const auto [f_us, n_runs] = GetParam();
    const TimeNs f = f_us * kMicrosecond;
    const TimeNs s = 10 * kMillisecond;
    const double predicted =
        hwcount::SamplingDriver::captureProbability(f, s, n_runs);

    // Monte Carlo: place the function at a fixed offset in each run's
    // window, sample with random phase, count runs where at least one
    // of the n windows caught it.
    int captured_trials = 0;
    const int trials = 400;
    for (int trial = 0; trial < trials; ++trial) {
        bool caught = false;
        for (int run = 0; run < n_runs && !caught; ++run) {
            std::vector<hwcount::KernelInterval> timeline(1);
            timeline[0].kernel = hwcount::KernelId::DecodeMcu;
            timeline[0].tid = 1;
            timeline[0].start = 2 * kMillisecond;
            timeline[0].end = 2 * kMillisecond + f;
            hwcount::SamplingDriver driver(
                {s, 0,
                 static_cast<std::uint64_t>(trial * 1000 + run + 1)});
            const auto samples = driver.sampleWindow(
                timeline, 0, 20 * kMillisecond);
            for (const auto &sample : samples) {
                if (sample.kernel == hwcount::KernelId::DecodeMcu)
                    caught = true;
            }
        }
        if (caught)
            ++captured_trials;
    }
    const double observed = static_cast<double>(captured_trials) / trials;
    // Binomial noise at 400 trials: allow ~4 sigma.
    const double sigma =
        std::sqrt(predicted * (1.0 - predicted) / trials) + 1e-3;
    EXPECT_NEAR(observed, predicted, 4.0 * sigma + 0.02)
        << "f=" << f_us << "us n=" << n_runs;
}

INSTANTIATE_TEST_SUITE_P(
    Spans, CaptureFormula,
    ::testing::Combine(::testing::Values(500, 2000, 5000),
                       ::testing::Values(1, 5, 20)));

// --- Queue FIFO under random interleavings ---------------------------

class QueueProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QueueProperty, FifoPreservedUnderRandomOps)
{
    Rng rng(GetParam());
    MpmcQueue<int> queue;
    std::vector<int> pushed, popped;
    int next = 0;
    for (int step = 0; step < 2000; ++step) {
        if (rng.chance(0.55)) {
            queue.push(next);
            pushed.push_back(next);
            ++next;
        } else if (auto v = queue.tryPop()) {
            popped.push_back(*v);
        }
    }
    while (auto v = queue.tryPop())
        popped.push_back(*v);
    EXPECT_EQ(popped, pushed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperty,
                         ::testing::Range<std::uint64_t>(1, 9));

// --- Tensor op algebra across shapes ----------------------------------

class TensorShapes
    : public ::testing::TestWithParam<std::vector<std::int64_t>>
{
};

TEST_P(TensorShapes, FlipIsInvolutionOnEveryAxis)
{
    Rng rng(13);
    tensor::Tensor t(tensor::DType::F32, GetParam());
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.data<float>()[i] = static_cast<float>(rng.nextDouble());
    for (int axis = 0; axis < static_cast<int>(t.rank()); ++axis) {
        const auto twice = tensor::flipAxis(tensor::flipAxis(t, axis), axis);
        for (std::int64_t i = 0; i < t.numel(); ++i)
            ASSERT_EQ(twice.data<float>()[i], t.data<float>()[i]);
    }
}

TEST_P(TensorShapes, FullCropIsIdentity)
{
    Rng rng(14);
    tensor::Tensor t(tensor::DType::U8, GetParam());
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.data<std::uint8_t>()[i] =
            static_cast<std::uint8_t>(rng.nextBelow(256));
    const std::vector<std::int64_t> zeros(t.rank(), 0);
    const auto copy = tensor::cropWindow(t, zeros, t.shape());
    for (std::int64_t i = 0; i < t.numel(); ++i)
        ASSERT_EQ(copy.data<std::uint8_t>()[i], t.data<std::uint8_t>()[i]);
}

TEST_P(TensorShapes, CastRoundTripPreservesBytes)
{
    Rng rng(15);
    tensor::Tensor t(tensor::DType::U8, GetParam());
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.data<std::uint8_t>()[i] =
            static_cast<std::uint8_t>(rng.nextBelow(256));
    const auto back =
        tensor::castF32ToU8(tensor::castU8ToF32(t, 1.0f), 1.0f);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        ASSERT_EQ(back.data<std::uint8_t>()[i], t.data<std::uint8_t>()[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TensorShapes,
    ::testing::Values(std::vector<std::int64_t>{7},
                      std::vector<std::int64_t>{3, 5},
                      std::vector<std::int64_t>{2, 3, 4},
                      std::vector<std::int64_t>{1, 4, 6, 3},
                      std::vector<std::int64_t>{2, 1, 3, 2, 2}));

// --- DES protocol invariants across configurations --------------------

class LoaderSimProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(LoaderSimProperty, ProtocolInvariantsHold)
{
    const auto [workers, batch_size, gpus] = GetParam();
    sim::LoaderSimConfig config;
    config.model = sim::ServiceModel::imageClassification();
    config.batch_size = batch_size;
    config.num_workers = workers;
    config.num_batches = 12;
    config.num_gpus = gpus;
    config.seed = static_cast<std::uint64_t>(workers * 100 + batch_size);
    config.log_ops = false;
    const auto result = sim::LoaderSim(config).run();

    // Every batch has exactly one preprocess, wait, consume, gpu.
    std::map<std::int64_t, int> pre, wait, consume, gpu;
    for (const auto &record : result.records) {
        switch (record.kind) {
          case trace::RecordKind::BatchPreprocessed:
            ++pre[record.batch_id];
            break;
          case trace::RecordKind::BatchWait: ++wait[record.batch_id]; break;
          case trace::RecordKind::BatchConsumed:
            ++consume[record.batch_id];
            break;
          case trace::RecordKind::GpuCompute: ++gpu[record.batch_id]; break;
          default: break;
        }
    }
    for (std::int64_t b = 0; b < 12; ++b) {
        ASSERT_EQ(pre[b], 1) << b;
        ASSERT_EQ(wait[b], 1) << b;
        ASSERT_EQ(consume[b], 1) << b;
        ASSERT_EQ(gpu[b], 1) << b;
    }

    // Consumption strictly in order; consumption never precedes
    // preprocessing completion.
    core::lotustrace::TraceAnalysis analysis(result.records);
    TimeNs last_consumed = -1;
    for (const auto &batch : analysis.batches()) {
        EXPECT_GE(batch.consumed_start, batch.preprocess_end);
        // Non-strict: cached out-of-order batches can be consumed
        // back-to-back at the same virtual instant.
        EXPECT_GE(batch.consumed_start, last_consumed);
        last_consumed = batch.consumed_start;
    }
    EXPECT_GT(result.e2e_time, 0);
    EXPECT_GE(result.avg_occupancy, 0.0);
    EXPECT_LE(result.avg_occupancy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LoaderSimProperty,
    ::testing::Combine(::testing::Values(1, 3, 8, 28),
                       ::testing::Values(2, 32),
                       ::testing::Values(1, 4)));

} // namespace
} // namespace lotus
