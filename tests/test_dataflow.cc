/**
 * @file
 * Unit and integration tests for the DataLoader protocol: samplers,
 * fetcher, ordering, prefetch, out-of-order handling, and the [T1]/
 * [T2] instrumentation points.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <limits>
#include <set>

#include "common/files.h"
#include "dataflow/data_loader.h"
#include "dataflow/iterable_loader.h"
#include "dataflow/sampler.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "metrics/metrics.h"
#include "pipeline/compose.h"
#include "pipeline/image_folder.h"
#include "pipeline/iterable_dataset.h"
#include "pipeline/store.h"
#include "pipeline/transforms/vision.h"
#include "trace/logger.h"

namespace lotus::dataflow {
namespace {

using pipeline::Batch;
using pipeline::PipelineContext;
using pipeline::Sample;

/**
 * Dataset producing tiny tensors whose value encodes the index, with
 * an optional index-dependent artificial compute time to provoke
 * out-of-order arrivals.
 */
class ToyDataset : public pipeline::Dataset
{
  public:
    ToyDataset(std::int64_t size, TimeNs base_cost = 0,
               TimeNs odd_extra_cost = 0)
        : size_(size), base_cost_(base_cost), odd_extra_(odd_extra_cost)
    {
    }

    ToyDataset(std::int64_t size, std::function<TimeNs(std::int64_t)> cost)
        : size_(size), cost_fn_(std::move(cost))
    {
    }

    std::int64_t size() const override { return size_; }

    Sample
    get(std::int64_t index, PipelineContext &ctx) const override
    {
        (void)ctx;
        TimeNs cost = base_cost_;
        if (index % 2 == 1)
            cost += odd_extra_;
        if (cost_fn_)
            cost = cost_fn_(index);
        if (cost > 0) {
            const auto &clock = SteadyClock::instance();
            const TimeNs deadline = clock.now() + cost;
            while (clock.now() < deadline) {
            }
        }
        Sample sample;
        sample.data = tensor::Tensor(tensor::DType::F32, {1});
        sample.data.data<float>()[0] = static_cast<float>(index);
        sample.label = index;
        return sample;
    }

  private:
    std::int64_t size_;
    TimeNs base_cost_ = 0;
    TimeNs odd_extra_ = 0;
    std::function<TimeNs(std::int64_t)> cost_fn_;
};

TEST(Sampler, SequentialAndShuffled)
{
    const auto seq = sequentialIndices(5);
    EXPECT_EQ(seq, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
    const auto shuffled = shuffledIndices(100, 3);
    EXPECT_EQ(shuffled.size(), 100u);
    EXPECT_NE(shuffled, sequentialIndices(100));
    std::set<std::int64_t> unique(shuffled.begin(), shuffled.end());
    EXPECT_EQ(unique.size(), 100u);
    // Same seed, same permutation.
    EXPECT_EQ(shuffledIndices(100, 3), shuffled);
    EXPECT_NE(shuffledIndices(100, 4), shuffled);
}

TEST(Sampler, BatchingDropLast)
{
    const auto indices = sequentialIndices(10);
    const auto keep = batchIndices(indices, 4, /*drop_last=*/false);
    ASSERT_EQ(keep.size(), 3u);
    EXPECT_EQ(keep[2].size(), 2u);
    const auto drop = batchIndices(indices, 4, /*drop_last=*/true);
    ASSERT_EQ(drop.size(), 2u);
    EXPECT_EQ(drop[1], (std::vector<std::int64_t>{4, 5, 6, 7}));
}

TEST(Fetcher, ProducesCollatedBatchWithCollateRecord)
{
    auto dataset = std::make_shared<ToyDataset>(8);
    auto collate = std::make_shared<pipeline::StackCollate>();
    Fetcher fetcher(dataset, collate);

    trace::TraceLogger logger;
    Rng rng(1);
    PipelineContext ctx;
    ctx.logger = &logger;
    ctx.pid = 3;
    ctx.rng = &rng;
    const Batch batch = fetcher.fetch(7, {2, 4, 6}, ctx);
    EXPECT_EQ(batch.batch_id, 7);
    EXPECT_EQ(batch.size(), 3);
    EXPECT_FLOAT_EQ(batch.data.data<float>()[1], 4.0f);
    EXPECT_EQ(batch.labels, (std::vector<std::int64_t>{2, 4, 6}));

    const auto records = logger.records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].op_name, "Collate");
    EXPECT_EQ(records[0].batch_id, 7);
}

DataLoaderOptions
baseOptions(int batch_size, int workers, trace::TraceLogger *logger)
{
    DataLoaderOptions options;
    options.batch_size = batch_size;
    options.num_workers = workers;
    options.logger = logger;
    options.pin_memory = true;
    return options;
}

TEST(DataLoaderOptionsValidation, RejectsNonPositiveBatchSize)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(0, 1, nullptr);
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1), "batch_size must be > 0");
}

TEST(DataLoaderOptionsValidation, RejectsNegativeNumWorkers)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, -1, nullptr);
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1), "num_workers must be >= 0");
}

TEST(DataLoaderOptionsValidation, RejectsPrefetchFactorBelowOne)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 1, nullptr);
    options.prefetch_factor = 0;
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1),
                "prefetch_factor must be >= 1");
}

TEST(DataLoaderOptionsValidation, RejectsNegativeMaxRetries)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 1, nullptr);
    options.max_retries = -1;
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1), "max_retries must be >= 0");
}

TEST(DataLoaderOptionsValidation, RejectsNegativeMaxRefillAttempts)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 1, nullptr);
    options.max_refill_attempts = -3;
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1),
                "max_refill_attempts must be >= 0");
}

TEST(DataLoaderOptionsValidation, RejectsPrefetchTimesWorkersOverflow)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 4, nullptr);
    options.prefetch_factor = std::numeric_limits<int>::max();
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1), "overflows");
}

TEST(DataLoaderOptionsValidation, HugePrefetchFactorIsCappedByEpoch)
{
    // A huge-but-valid prefetch_factor must not try to prime billions
    // of rounds: priming is capped at the epoch's batch count.
    auto dataset = std::make_shared<ToyDataset>(8);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 1, nullptr);
    options.prefetch_factor = std::numeric_limits<int>::max();
    DataLoader loader(dataset, collate, options);
    std::int64_t batches = 0;
    while (loader.next().has_value())
        ++batches;
    EXPECT_EQ(batches, 4);
}

TEST(DataLoaderOptionsValidation, RejectsNonPositiveCacheBudget)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 1, nullptr);
    options.cache_policy = CachePolicy::kMemory;
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1),
                "cache_budget_bytes must be > 0");
}

TEST(DataLoaderOptionsValidation, RejectsNonPositiveCacheShards)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 1, nullptr);
    options.cache_policy = CachePolicy::kMemory;
    options.cache_budget_bytes = 1 << 20;
    options.cache_shards = 0;
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1), "cache_shards must be > 0");
}

TEST(DataLoaderOptionsValidation, RejectsMaterializeWithoutADirectory)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 1, nullptr);
    options.cache_policy = CachePolicy::kMaterialize;
    options.cache_budget_bytes = 1 << 20;
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1), "needs a materialize_dir");
}

TEST(DataLoaderOptionsValidation, RejectsDirectoryWithoutMaterialize)
{
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 1, nullptr);
    options.cache_policy = CachePolicy::kMemory;
    options.cache_budget_bytes = 1 << 20;
    options.materialize_dir = "/tmp/lotus_unused_spills";
    EXPECT_EXIT(DataLoader(dataset, collate, options),
                ::testing::ExitedWithCode(1),
                "cache_policy is not kMaterialize");
}

TEST(DataLoaderOptionsValidation, RejectsMaterializeDirCollision)
{
    // Two live loaders spilling into one directory would silently
    // corrupt each other's files; the second claim must be fatal.
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    TempDir dir("lotus_dataflow_spills");
    auto options = baseOptions(2, 1, nullptr);
    options.cache_policy = CachePolicy::kMaterialize;
    options.cache_budget_bytes = 1 << 20;
    options.materialize_dir = dir.file("spills");
    EXPECT_EXIT(
        {
            DataLoader first(dataset, collate, options);
            DataLoader second(dataset, collate, options);
        },
        ::testing::ExitedWithCode(1), "already in use");
}

TEST(DataLoader, SynchronousModeDeliversAllBatchesInOrder)
{
    trace::TraceLogger logger;
    auto dataset = std::make_shared<ToyDataset>(12);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(3, 0, &logger));
    EXPECT_TRUE(loader.workerPids().empty());
    for (std::int64_t i = 0; i < 4; ++i) {
        auto batch = loader.next();
        ASSERT_TRUE(batch.has_value());
        EXPECT_EQ(batch->batch_id, i);
        EXPECT_EQ(batch->labels[0], i * 3);
    }
    EXPECT_FALSE(loader.next().has_value());
    // Inline fetches log [T1] on the main pid; no [T2] waits exist.
    int preprocessed = 0, waits = 0;
    for (const auto &record : logger.records()) {
        if (record.kind == trace::RecordKind::BatchPreprocessed) {
            ++preprocessed;
            EXPECT_EQ(record.pid, loader.mainPid());
        }
        if (record.kind == trace::RecordKind::BatchWait)
            ++waits;
    }
    EXPECT_EQ(preprocessed, 4);
    EXPECT_EQ(waits, 0);
}

TEST(DataLoader, SynchronousModeMultiEpochRestart)
{
    auto dataset = std::make_shared<ToyDataset>(6);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 0, nullptr);
    options.shuffle = true;
    DataLoader loader(dataset, collate, options);
    for (int epoch = 0; epoch < 2; ++epoch) {
        loader.startEpoch();
        std::multiset<std::int64_t> labels;
        while (auto batch = loader.next()) {
            for (const auto label : batch->labels)
                labels.insert(label);
        }
        EXPECT_EQ(labels.size(), 6u);
    }
}

TEST(DataLoader, MultiEpochMetricsAccumulateAndTraceRecordsGrow)
{
    // Documented contract: trace records and metric counters
    // accumulate across epochs (one logger, one process-wide
    // registry); queue-depth gauges return to zero once each epoch
    // drains.
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    trace::TraceLogger logger;
    auto dataset = std::make_shared<ToyDataset>(8);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(2, 2, &logger));

    loader.startEpoch();
    while (loader.next().has_value()) {
    }
    const auto batches_after_first =
        registry.counter("lotus_loader_batches_total")->value();
    const auto records_after_first = logger.recordCount();
    EXPECT_EQ(batches_after_first, 4u);

    loader.startEpoch();
    while (loader.next().has_value()) {
    }
    EXPECT_EQ(registry.counter("lotus_loader_batches_total")->value(),
              2 * batches_after_first);
    EXPECT_EQ(logger.recordCount(), 2 * records_after_first);
    EXPECT_EQ(registry.gauge("lotus_loader_data_queue_depth")->value(), 0);
    EXPECT_EQ(
        registry
            .gauge(metrics::labeled("lotus_loader_index_queue_depth",
                                    "worker", "0"))
            ->value(),
        0);
    EXPECT_EQ(registry.gauge("lotus_loader_pin_cache_size")->value(), 0);
    registry.reset();
}

TEST(DataLoader, DeliversAllBatchesInOrderSingleWorker)
{
    auto dataset = std::make_shared<ToyDataset>(12);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(3, 1, nullptr));
    EXPECT_EQ(loader.numBatches(), 4);
    for (std::int64_t i = 0; i < 4; ++i) {
        auto batch = loader.next();
        ASSERT_TRUE(batch.has_value());
        EXPECT_EQ(batch->batch_id, i);
        EXPECT_EQ(batch->labels[0], i * 3);
    }
    EXPECT_FALSE(loader.next().has_value());
}

TEST(DataLoader, InOrderDeliveryWithManyWorkers)
{
    auto dataset = std::make_shared<ToyDataset>(32, 100 * kMicrosecond,
                                                2 * kMillisecond);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(2, 4, nullptr));
    for (std::int64_t i = 0; i < loader.numBatches(); ++i) {
        auto batch = loader.next();
        ASSERT_TRUE(batch.has_value());
        EXPECT_EQ(batch->batch_id, i);
    }
    EXPECT_FALSE(loader.next().has_value());
}

TEST(DataLoader, ShuffleCoversDatasetOnce)
{
    auto dataset = std::make_shared<ToyDataset>(20);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(4, 2, nullptr);
    options.shuffle = true;
    options.seed = 5;
    DataLoader loader(dataset, collate, options);
    std::multiset<std::int64_t> labels;
    while (auto batch = loader.next()) {
        for (const auto label : batch->labels)
            labels.insert(label);
    }
    EXPECT_EQ(labels.size(), 20u);
    EXPECT_EQ(*labels.begin(), 0);
    EXPECT_EQ(*labels.rbegin(), 19);
}

TEST(DataLoader, LogsT1T2AndConsumedSpans)
{
    trace::TraceLogger logger;
    auto dataset = std::make_shared<ToyDataset>(8);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(2, 2, &logger));
    while (loader.next().has_value()) {
    }
    int preprocessed = 0, waits = 0, consumed = 0;
    for (const auto &record : logger.records()) {
        switch (record.kind) {
          case trace::RecordKind::BatchPreprocessed: ++preprocessed; break;
          case trace::RecordKind::BatchWait: ++waits; break;
          case trace::RecordKind::BatchConsumed: ++consumed; break;
          default: break;
        }
    }
    EXPECT_EQ(preprocessed, 4);
    EXPECT_EQ(waits, 4);
    EXPECT_EQ(consumed, 4);
}

TEST(DataLoader, WorkerPidsDistinctFromMain)
{
    trace::TraceLogger logger;
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(2, 2, &logger));
    loader.startEpoch();
    const auto worker_pids = loader.workerPids();
    while (loader.next().has_value()) {
    }
    ASSERT_EQ(worker_pids.size(), 2u);
    EXPECT_NE(worker_pids[0], worker_pids[1]);
    for (const auto pid : worker_pids)
        EXPECT_NE(pid, loader.mainPid());
}

TEST(DataLoader, OutOfOrderArrivalsGetSentinelWaits)
{
    // Even-numbered batches (indices 0-1, 4-5, ...) are much slower
    // than odd ones, so with multiple workers the odd batches always
    // overtake on the shared data queue (the Fig. 3 scenario).
    trace::TraceLogger logger;
    auto dataset = std::make_shared<ToyDataset>(
        40, [](std::int64_t index) -> TimeNs {
            return (index / 2) % 2 == 0 ? 5 * kMillisecond
                                        : 100 * kMicrosecond;
        });
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(2, 4, &logger));
    while (loader.next().has_value()) {
    }
    int sentinels = 0;
    for (const auto &record : logger.records()) {
        if (record.kind == trace::RecordKind::BatchWait &&
            record.duration <= trace::kOutOfOrderSentinel)
            ++sentinels;
    }
    EXPECT_GT(sentinels, 0);
}

TEST(DataLoader, ShuffleReshufflesEachEpoch)
{
    auto dataset = std::make_shared<ToyDataset>(24);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(4, 1, nullptr);
    options.shuffle = true;
    options.seed = 9;
    DataLoader loader(dataset, collate, options);
    auto collectEpoch = [&] {
        loader.startEpoch();
        std::vector<std::int64_t> labels;
        while (auto batch = loader.next()) {
            labels.insert(labels.end(), batch->labels.begin(),
                          batch->labels.end());
        }
        return labels;
    };
    const auto first = collectEpoch();
    const auto second = collectEpoch();
    EXPECT_NE(first, second); // different permutations...
    std::multiset<std::int64_t> a(first.begin(), first.end());
    std::multiset<std::int64_t> b(second.begin(), second.end());
    EXPECT_EQ(a, b); // ...of the same samples
}

TEST(DataLoader, EpochMarkerLogged)
{
    trace::TraceLogger logger;
    auto dataset = std::make_shared<ToyDataset>(4);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(2, 1, &logger));
    while (loader.next().has_value()) {
    }
    int markers = 0;
    for (const auto &record : logger.records()) {
        if (record.kind == trace::RecordKind::EpochBoundary &&
            record.op_name == "epoch_start")
            ++markers;
    }
    EXPECT_EQ(markers, 1);
}

TEST(DataLoader, MultiEpochRestart)
{
    auto dataset = std::make_shared<ToyDataset>(6);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoader loader(dataset, collate, baseOptions(2, 2, nullptr));
    for (int epoch = 0; epoch < 3; ++epoch) {
        loader.startEpoch();
        int batches = 0;
        while (loader.next().has_value())
            ++batches;
        EXPECT_EQ(batches, 3);
    }
}

/** ImageFolder over in-memory blobs with a random augmentation, for
 *  probing the per-epoch fetch-RNG reseed. */
std::shared_ptr<pipeline::ImageFolderDataset>
makeAugmentedDataset()
{
    auto store = std::make_shared<pipeline::InMemoryStore>();
    Rng synth_rng(123);
    for (int i = 0; i < 4; ++i) {
        store->add(image::codec::encode(
            image::synthesize(synth_rng, 32, 32)));
    }
    std::vector<pipeline::TransformPtr> transforms;
    pipeline::RandomResizedCrop::Params crop;
    crop.size = 16;
    transforms.push_back(
        std::make_unique<pipeline::RandomResizedCrop>(crop));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        store, std::make_shared<pipeline::Compose>(std::move(transforms)),
        4);
}

/** Run one full epoch and return every batch tensor's contents. */
std::vector<float>
epochTensorData(DataLoader &loader)
{
    loader.startEpoch();
    std::vector<float> out;
    while (auto batch = loader.next()) {
        const float *data = batch->data.data<float>();
        out.insert(out.end(), data, data + batch->data.numel());
    }
    return out;
}

TEST(DataLoader, AugmentationDrawsDifferAcrossEpochs)
{
    // Regression: worker fetch RNGs used to ignore the epoch, so
    // RandomResizedCrop drew identical crops every epoch even though
    // the shuffle reseeded. Epochs must differ, while a fixed (seed,
    // epoch, worker) triple stays exactly reproducible.
    auto dataset = makeAugmentedDataset();
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(4, 1, nullptr);
    options.seed = 11;
    DataLoader loader(dataset, collate, options);
    const auto epoch0 = epochTensorData(loader);
    const auto epoch1 = epochTensorData(loader);
    ASSERT_EQ(epoch0.size(), epoch1.size());
    EXPECT_NE(epoch0, epoch1);

    DataLoader replay(dataset, collate, options);
    EXPECT_EQ(epochTensorData(replay), epoch0);
    EXPECT_EQ(epochTensorData(replay), epoch1);
}

TEST(DataLoader, SynchronousAugmentationDrawsDifferAcrossEpochs)
{
    auto dataset = makeAugmentedDataset();
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(4, 0, nullptr);
    options.seed = 11;
    DataLoader loader(dataset, collate, options);
    const auto epoch0 = epochTensorData(loader);
    const auto epoch1 = epochTensorData(loader);
    EXPECT_NE(epoch0, epoch1);

    DataLoader replay(dataset, collate, options);
    EXPECT_EQ(epochTensorData(replay), epoch0);
    EXPECT_EQ(epochTensorData(replay), epoch1);
}

TEST(DataLoader, PrefetchKeepsWorkersAheadOfConsumer)
{
    // With prefetch_factor 2 and 2 workers, up to 4 batches can be
    // in flight before the first next(); just verify the protocol
    // completes and every label arrives exactly once.
    auto dataset = std::make_shared<ToyDataset>(24, 200 * kMicrosecond);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(2, 2, nullptr);
    options.prefetch_factor = 2;
    DataLoader loader(dataset, collate, options);
    std::multiset<std::int64_t> labels;
    while (auto batch = loader.next()) {
        for (const auto label : batch->labels)
            labels.insert(label);
    }
    EXPECT_EQ(labels.size(), 24u);
}

TEST(DataLoader, DropLastFalseKeepsPartialBatch)
{
    auto dataset = std::make_shared<ToyDataset>(7);
    auto collate = std::make_shared<pipeline::StackCollate>();
    auto options = baseOptions(3, 1, nullptr);
    options.drop_last = false;
    DataLoader loader(dataset, collate, options);
    EXPECT_EQ(loader.numBatches(), 3);
    std::int64_t samples = 0;
    while (auto batch = loader.next())
        samples += batch->size();
    EXPECT_EQ(samples, 7);
}

TEST(IterableLoader, ShardsCoverDatasetExactlyOnce)
{
    auto map_dataset = std::make_shared<ToyDataset>(23);
    auto dataset =
        std::make_shared<pipeline::ShardedIterable>(map_dataset);
    auto collate = std::make_shared<pipeline::StackCollate>();
    IterableLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 3;
    IterableDataLoader loader(dataset, collate, options);
    std::multiset<std::int64_t> labels;
    std::int64_t batches = 0;
    while (auto batch = loader.next()) {
        ++batches;
        EXPECT_LE(batch->size(), 4);
        for (const auto label : batch->labels) {
            EXPECT_EQ(labels.count(label), 0u) << "duplicate sample";
            labels.insert(label);
        }
    }
    EXPECT_EQ(labels.size(), 23u);
    EXPECT_EQ(*labels.rbegin(), 22);
    EXPECT_GE(batches, 6); // 23 samples at batch 4 across 3 shards
    EXPECT_FALSE(loader.next().has_value()); // stays exhausted
}

TEST(IterableLoader, DropLastRemovesPartialShardTails)
{
    auto dataset = std::make_shared<pipeline::ShardedIterable>(
        std::make_shared<ToyDataset>(10));
    auto collate = std::make_shared<pipeline::StackCollate>();
    IterableLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    options.drop_last = true;
    // Each shard has 5 samples: one full batch of 4, tail dropped.
    IterableDataLoader loader(dataset, collate, options);
    std::int64_t samples = 0;
    while (auto batch = loader.next()) {
        EXPECT_EQ(batch->size(), 4);
        samples += batch->size();
    }
    EXPECT_EQ(samples, 8);
}

TEST(IterableLoader, InstrumentationMatchesMapStyleSpans)
{
    trace::TraceLogger logger;
    auto dataset = std::make_shared<pipeline::ShardedIterable>(
        std::make_shared<ToyDataset>(8));
    auto collate = std::make_shared<pipeline::StackCollate>();
    IterableLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 2;
    options.logger = &logger;
    IterableDataLoader loader(dataset, collate, options);
    int batches = 0;
    while (loader.next().has_value())
        ++batches;
    int t1 = 0, t2 = 0, consumed = 0, collates = 0;
    for (const auto &record : logger.records()) {
        switch (record.kind) {
          case trace::RecordKind::BatchPreprocessed: ++t1; break;
          case trace::RecordKind::BatchWait: ++t2; break;
          case trace::RecordKind::BatchConsumed: ++consumed; break;
          case trace::RecordKind::TransformOp:
            if (record.op_name == "Collate")
                ++collates;
            break;
          default: break;
        }
    }
    EXPECT_EQ(batches, 4);
    EXPECT_EQ(t1, 4);
    EXPECT_EQ(consumed, 4);
    EXPECT_EQ(collates, 4);
    EXPECT_GE(t2, 4); // waits include pops that returned done markers
}

TEST(IterableLoader, MultiEpochRestart)
{
    auto dataset = std::make_shared<pipeline::ShardedIterable>(
        std::make_shared<ToyDataset>(6));
    auto collate = std::make_shared<pipeline::StackCollate>();
    IterableLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 2;
    IterableDataLoader loader(dataset, collate, options);
    for (int epoch = 0; epoch < 2; ++epoch) {
        loader.startEpoch();
        std::int64_t samples = 0;
        while (auto batch = loader.next())
            samples += batch->size();
        EXPECT_EQ(samples, 6);
    }
}

TEST(IterableLoader, DestructorJoinsMidStream)
{
    auto dataset = std::make_shared<pipeline::ShardedIterable>(
        std::make_shared<ToyDataset>(64, kMillisecond));
    auto collate = std::make_shared<pipeline::StackCollate>();
    IterableLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 2;
    {
        IterableDataLoader loader(dataset, collate, options);
        loader.next();
    }
    SUCCEED();
}

TEST(DataLoader, DestructorJoinsMidEpoch)
{
    auto dataset = std::make_shared<ToyDataset>(64, kMillisecond);
    auto collate = std::make_shared<pipeline::StackCollate>();
    {
        DataLoader loader(dataset, collate, baseOptions(2, 2, nullptr));
        loader.startEpoch();
        loader.next(); // consume one, then abandon
    }
    SUCCEED(); // no deadlock, no crash
}

} // namespace
} // namespace lotus::dataflow
