/**
 * @file
 * Schedule::kWorkStealing suite: bit-identical batches across
 * schedules and worker counts (the per-sample RNG reseeding
 * contract), in-order delivery through the reorder cache while tasks
 * migrate between workers, all three ErrorPolicy behaviors under
 * stealing, FaultyStore end-to-end runs, and the steal telemetry
 * (counters, TaskSpan/StealEvent trace records).
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "dataflow/error_policy.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "metrics/metrics.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/faulty_store.h"
#include "pipeline/image_folder.h"
#include "pipeline/store.h"
#include "pipeline/transforms/vision.h"
#include "trace/logger.h"
#include "workloads/synthetic.h"

namespace lotus::dataflow {
namespace {

using pipeline::FaultyStore;
using pipeline::FaultyStoreOptions;
using pipeline::PipelineContext;
using pipeline::Sample;

/** Index-stamped tensors plus per-sample RNG draws, with an optional
 *  cost function to shape which worker finishes when. */
class ProbeDataset : public pipeline::Dataset
{
  public:
    explicit ProbeDataset(std::int64_t size,
                          std::function<TimeNs(std::int64_t)> cost = {})
        : size_(size), cost_fn_(std::move(cost))
    {
    }

    std::int64_t size() const override { return size_; }

    Sample
    get(std::int64_t index, PipelineContext &ctx) const override
    {
        if (cost_fn_) {
            const TimeNs cost = cost_fn_(index);
            const auto &clock = SteadyClock::instance();
            const TimeNs deadline = clock.now() + cost;
            while (clock.now() < deadline) {
            }
        }
        Sample sample;
        sample.data = tensor::Tensor(tensor::DType::F32, {4});
        float *out = sample.data.data<float>();
        // The RNG mix makes batch bytes sensitive to WHICH seed state
        // produced them, not just which index: any deviation from the
        // per-sample reseeding contract shows up as a byte diff.
        for (int i = 0; i < 4; ++i)
            out[i] = static_cast<float>(index) +
                     static_cast<float>(ctx.rngRef().nextDouble());
        sample.label = index;
        return sample;
    }

  private:
    std::int64_t size_;
    std::function<TimeNs(std::int64_t)> cost_fn_;
};

DataLoaderOptions
wsOptions(int batch_size, int workers,
          trace::TraceLogger *logger = nullptr)
{
    DataLoaderOptions options;
    options.batch_size = batch_size;
    options.num_workers = workers;
    options.schedule = Schedule::kWorkStealing;
    options.logger = logger;
    options.seed = 31;
    return options;
}

/** Every batch's payload bytes + labels, in epoch order. */
std::vector<std::uint8_t>
epochBytes(const std::shared_ptr<pipeline::Dataset> &dataset,
           DataLoaderOptions options)
{
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(), options);
    std::vector<std::uint8_t> bytes;
    while (auto batch = loader.next()) {
        const std::uint8_t *raw = batch->data.raw();
        bytes.insert(bytes.end(), raw, raw + batch->data.byteSize());
        for (const std::int64_t label : batch->labels) {
            const auto *p =
                reinterpret_cast<const std::uint8_t *>(&label);
            bytes.insert(bytes.end(), p, p + sizeof(label));
        }
    }
    return bytes;
}

TEST(WorkStealing, BitIdenticalAcrossSchedulesWorkersAndSync)
{
    auto dataset = std::make_shared<ProbeDataset>(48);
    auto reference = wsOptions(4, 4);
    reference.schedule = Schedule::kRoundRobin;
    reference.shuffle = true;
    const auto expected = epochBytes(dataset, reference);

    for (const int workers : {0, 1, 2, 4}) {
        auto options = wsOptions(4, workers);
        options.shuffle = true;
        if (workers == 0)
            options.schedule = Schedule::kRoundRobin;
        EXPECT_EQ(epochBytes(dataset, options), expected)
            << "workers=" << workers;
    }
}

TEST(WorkStealing, MultiEpochReplayIsExactlyReproducible)
{
    auto dataset = std::make_shared<ProbeDataset>(24);
    auto options = wsOptions(4, 3);
    options.shuffle = true;

    auto collectTwoEpochs = [&] {
        DataLoader loader(dataset,
                          std::make_shared<pipeline::StackCollate>(),
                          options);
        std::vector<std::vector<std::uint8_t>> epochs;
        for (int epoch = 0; epoch < 2; ++epoch) {
            loader.startEpoch();
            std::vector<std::uint8_t> bytes;
            while (auto batch = loader.next()) {
                const std::uint8_t *raw = batch->data.raw();
                bytes.insert(bytes.end(), raw,
                             raw + batch->data.byteSize());
            }
            epochs.push_back(std::move(bytes));
        }
        return epochs;
    };
    const auto first = collectTwoEpochs();
    const auto second = collectTwoEpochs();
    EXPECT_NE(first[0], first[1]); // epochs draw differently...
    EXPECT_EQ(first, second);      // ...but replay exactly
}

TEST(WorkStealing, InOrderDeliveryWithOutOfOrderCompletion)
{
    // Sample 0 is a 20 ms straggler while everything else is nearly
    // free: later batches finish while batch 0 is still open, flow
    // through the reorder cache, and next() must still hand batches
    // out strictly in id order.
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    auto dataset = std::make_shared<ProbeDataset>(
        32, [](std::int64_t index) -> TimeNs {
            return index == 0 ? 20 * kMillisecond : 20 * kMicrosecond;
        });
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(),
                      wsOptions(4, 4));
    for (std::int64_t i = 0; i < loader.numBatches(); ++i) {
        auto batch = loader.next();
        ASSERT_TRUE(batch.has_value());
        EXPECT_EQ(batch->batch_id, i);
    }
    EXPECT_FALSE(loader.next().has_value());
    EXPECT_GT(registry.counter("lotus_loader_ooo_batches_total")->value(),
              0u);
    registry.reset();
}

TEST(WorkStealing, StealTelemetryCountsTasksAndSteals)
{
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    // One worker decomposes a whole 16-sample batch onto its own
    // deque; with per-sample costs the three idle peers must steal.
    trace::TraceLogger logger;
    auto dataset = std::make_shared<ProbeDataset>(
        64, [](std::int64_t) -> TimeNs { return 200 * kMicrosecond; });
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(),
                      wsOptions(16, 4, &logger));
    while (loader.next().has_value()) {
    }

    EXPECT_EQ(registry.counter(kTasksMetric)->value(), 64u);
    std::uint64_t steals = 0;
    for (int w = 0; w < 4; ++w)
        steals += registry
                      .counter(metrics::labeled(kStealsMetric, "worker",
                                                strFormat("%d", w)))
                      ->value();
    EXPECT_GT(steals, 0u);

    // One TaskSpan per sample; one StealEvent per counted steal, and
    // both new kinds survive the text round-trip.
    std::uint64_t task_spans = 0, steal_events = 0;
    for (const auto &record : logger.records()) {
        if (record.kind == trace::RecordKind::TaskSpan) {
            ++task_spans;
            EXPECT_EQ(record.op_name, "task");
            EXPECT_GE(record.sample_index, 0);
        }
        if (record.kind == trace::RecordKind::StealEvent) {
            ++steal_events;
            EXPECT_EQ(record.op_name.rfind("steal<-w", 0), 0u);
            const trace::TraceRecord back =
                trace::TraceRecord::fromLine(record.toLine());
            EXPECT_EQ(back.kind, trace::RecordKind::StealEvent);
            EXPECT_EQ(back.op_name, record.op_name);
        }
    }
    EXPECT_EQ(task_spans, 64u);
    EXPECT_EQ(steal_events, steals);

    // Batch spans were recorded for every batch.
    EXPECT_EQ(registry.histogram("lotus_loader_batch_span_ns")->count(),
              4u);
    registry.reset();
}

// --- Error policies under stealing -----------------------------------

std::shared_ptr<pipeline::ImageFolderDataset>
makeImageDataset(std::shared_ptr<const pipeline::BlobStore> store)
{
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::make_shared<pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/1 << 20);
}

std::shared_ptr<pipeline::InMemoryStore>
makeEncodedStore(int count)
{
    auto store = std::make_shared<pipeline::InMemoryStore>();
    Rng rng(99);
    for (int i = 0; i < count; ++i)
        store->add(
            image::codec::encode(image::synthesize(rng, 16, 16)));
    return store;
}

TEST(WorkStealingErrorPolicy, FailSurfacesBatchIdentityAndRestarts)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(12),
                                                FaultyStoreOptions{});
    faulty->inject(5, FaultyStore::Fault::kIoError);
    auto options = wsOptions(2, 2);
    options.error_policy = ErrorPolicy::kFail;
    DataLoader loader(makeImageDataset(faulty),
                      std::make_shared<pipeline::StackCollate>(), options);

    std::int64_t delivered = 0;
    bool threw = false;
    try {
        while (loader.next().has_value())
            ++delivered;
    } catch (const LoaderError &e) {
        threw = true;
        EXPECT_EQ(e.batchId(), 2); // index 5 lives in batch {4, 5}
        EXPECT_GE(e.workerId(), 0);
        EXPECT_LT(e.workerId(), 2);
        EXPECT_EQ(e.error().code, ErrorCode::kIoError);
        EXPECT_EQ(e.error().stage, "store");
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(delivered, 2); // error surfaced in batch order

    // Restartable after the failed epoch.
    loader.startEpoch();
    auto batch = loader.next();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->batch_id, 0);
}

TEST(WorkStealingErrorPolicy, SkipRefillsMatchRoundRobinExactly)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(40),
                                                FaultyStoreOptions{});
    faulty->inject(0, FaultyStore::Fault::kIoError);
    faulty->inject(20, FaultyStore::Fault::kIoError);
    auto dataset = makeImageDataset(faulty);
    auto collate = std::make_shared<pipeline::StackCollate>();

    auto epochLabels = [&](Schedule schedule) {
        auto options = wsOptions(4, 2);
        options.schedule = schedule;
        options.error_policy = ErrorPolicy::kSkip;
        DataLoader loader(dataset, collate, options);
        std::vector<std::int64_t> labels;
        while (auto batch = loader.next()) {
            EXPECT_EQ(batch->size(), 4); // cadence and shape intact
            labels.insert(labels.end(), batch->labels.begin(),
                          batch->labels.end());
        }
        return labels;
    };

    // Both schedules walk the same deterministic (index + 1) refill
    // chain, so the delivered label sequences agree exactly.
    const auto stealing = epochLabels(Schedule::kWorkStealing);
    EXPECT_EQ(stealing, epochLabels(Schedule::kRoundRobin));
    ASSERT_EQ(stealing.size(), 40u);
    const std::multiset<std::int64_t> counts(stealing.begin(),
                                             stealing.end());
    EXPECT_EQ(counts.count(0), 0u); // dropped...
    EXPECT_EQ(counts.count(1), 2u); // ...forward neighbor duplicated
    EXPECT_EQ(counts.count(20), 0u);
    EXPECT_EQ(counts.count(21), 2u);
}

TEST(WorkStealingErrorPolicy, RetryClearsTransientStoreFaults)
{
    FaultyStoreOptions fault_options;
    fault_options.transient_failures = 2;
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(12),
                                                fault_options);
    faulty->inject(3, FaultyStore::Fault::kIoError);
    auto options = wsOptions(2, 2);
    options.error_policy = ErrorPolicy::kRetry;
    options.max_retries = 2;
    DataLoader loader(makeImageDataset(faulty),
                      std::make_shared<pipeline::StackCollate>(), options);

    std::multiset<std::int64_t> labels;
    while (auto batch = loader.next()) {
        for (const auto label : batch->labels)
            labels.insert(label);
    }
    EXPECT_EQ(labels.size(), 12u);
    for (std::int64_t i = 0; i < 12; ++i)
        EXPECT_EQ(labels.count(i), 1u) << "label " << i;
}

TEST(WorkStealingErrorPolicy, RetryExhaustionFailsTheBatch)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(8),
                                                FaultyStoreOptions{});
    faulty->inject(2, FaultyStore::Fault::kIoError); // permanent
    auto options = wsOptions(2, 2);
    options.error_policy = ErrorPolicy::kRetry;
    options.max_retries = 1;
    DataLoader loader(makeImageDataset(faulty),
                      std::make_shared<pipeline::StackCollate>(), options);
    EXPECT_THROW(
        {
            while (loader.next().has_value()) {
            }
        },
        LoaderError);
}

TEST(WorkStealingErrorPolicy, FullyCorruptStoreExhaustsSkipRefills)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(6),
                                                FaultyStoreOptions{});
    for (std::int64_t i = 0; i < 6; ++i)
        faulty->inject(i, FaultyStore::Fault::kIoError);
    auto options = wsOptions(2, 2);
    options.error_policy = ErrorPolicy::kSkip;
    options.max_refill_attempts = 4;
    DataLoader loader(makeImageDataset(faulty),
                      std::make_shared<pipeline::StackCollate>(), options);
    EXPECT_THROW(
        {
            while (loader.next().has_value()) {
            }
        },
        LoaderError);
}

TEST(WorkStealing, HeavyTailDatasetEndToEnd)
{
    // The bench scenario in miniature: a lognormal cost surface with
    // stragglers, run under stealing and checked against round-robin
    // for content equality.
    workloads::HeavyTailCostConfig config;
    config.median_cost = 30 * kMicrosecond;
    config.sigma = 0.6;
    config.straggler_fraction = 0.05;
    config.straggler_multiplier = 50.0;
    config.busy_fraction = 0.2;
    auto dataset =
        std::make_shared<workloads::HeavyTailCostDataset>(64, config);

    auto stealing = wsOptions(8, 4);
    stealing.shuffle = true;
    auto round_robin = stealing;
    round_robin.schedule = Schedule::kRoundRobin;
    EXPECT_EQ(epochBytes(dataset, stealing),
              epochBytes(dataset, round_robin));
}

TEST(WorkStealing, DestructorJoinsMidEpoch)
{
    auto dataset = std::make_shared<ProbeDataset>(
        64, [](std::int64_t) -> TimeNs { return kMillisecond; });
    {
        DataLoader loader(dataset,
                          std::make_shared<pipeline::StackCollate>(),
                          wsOptions(2, 2));
        loader.startEpoch();
        loader.next(); // consume one, then abandon
    }
    SUCCEED(); // no deadlock, no dangling task pointers
}

// --- Decoded-sample cache under every schedule ------------------------

TEST(WorkStealing, WarmCacheEpochsBitIdenticalAcrossSchedulesAndSync)
{
    // The cache replays a stored prefix + fresh random suffix instead
    // of the full sample path; every schedule's warm epochs must stay
    // bit-identical to the uncached round-robin reference. Resize
    // first gives a nonempty deterministic prefix, the flip a random
    // suffix whose rng draws must land identically on the warm path.
    auto store = makeEncodedStore(24);
    auto makeDataset = [&] {
        std::vector<pipeline::TransformPtr> transforms;
        transforms.push_back(
            std::make_unique<pipeline::Resize>(12, 0, /*exact=*/true));
        transforms.push_back(
            std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
        transforms.push_back(std::make_unique<pipeline::ToTensor>());
        return std::make_shared<pipeline::ImageFolderDataset>(
            store,
            std::make_shared<pipeline::Compose>(std::move(transforms)),
            /*num_classes=*/1 << 20);
    };

    // Epoch payloads from one loader across 3 epochs (the cache is
    // per-loader state, so multi-epoch runs must share the instance).
    auto threeEpochs = [](const std::shared_ptr<pipeline::Dataset> &d,
                          const DataLoaderOptions &options) {
        DataLoader loader(
            d, std::make_shared<pipeline::StackCollate>(), options);
        std::vector<std::vector<std::uint8_t>> epochs;
        for (int epoch = 0; epoch < 3; ++epoch) {
            loader.startEpoch();
            std::vector<std::uint8_t> bytes;
            while (auto batch = loader.next()) {
                const std::uint8_t *raw = batch->data.raw();
                bytes.insert(bytes.end(), raw,
                             raw + batch->data.byteSize());
                for (const std::int64_t label : batch->labels) {
                    const auto *p =
                        reinterpret_cast<const std::uint8_t *>(&label);
                    bytes.insert(bytes.end(), p, p + sizeof(label));
                }
            }
            epochs.push_back(std::move(bytes));
        }
        return epochs;
    };

    auto reference = wsOptions(4, 3);
    reference.schedule = Schedule::kRoundRobin;
    reference.shuffle = true;
    const auto expected = threeEpochs(makeDataset(), reference);

    struct Case
    {
        const char *name;
        Schedule schedule;
        int workers;
    };
    for (const Case &c :
         {Case{"round-robin", Schedule::kRoundRobin, 3},
          Case{"work-stealing", Schedule::kWorkStealing, 3},
          Case{"sync", Schedule::kRoundRobin, 0}}) {
        auto options = wsOptions(4, c.workers);
        options.schedule = c.schedule;
        options.shuffle = true;
        options.cache_policy = CachePolicy::kMemory;
        options.cache_budget_bytes = 64 << 20;
        EXPECT_EQ(threeEpochs(makeDataset(), options), expected)
            << "schedule=" << c.name;
    }
}

} // namespace
} // namespace lotus::dataflow
