/**
 * @file
 * Tuner suite: signal extraction from snapshot diffs, the bottleneck
 * model's decisions (consumer / decode / store / collate verdicts,
 * the sentinel-ratio schedule flip, adaptive read-ahead depth),
 * epoch-boundary reconfiguration (validation, engine rebuild, and the
 * bit-identity contract under every ErrorPolicy x CachePolicy), live
 * convergence on a heavy-tailed fixture, and the replay parsers.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/files.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "metrics/export.h"
#include "metrics/metrics.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/image_folder.h"
#include "pipeline/store.h"
#include "pipeline/traced_store.h"
#include "pipeline/transforms/vision.h"
#include "trace/chrome_trace.h"
#include "tuner/replay.h"
#include "tuner/tuner.h"
#include "workloads/synthetic.h"

namespace lotus {
namespace {

using dataflow::CachePolicy;
using dataflow::DataLoader;
using dataflow::DataLoaderOptions;
using dataflow::ErrorPolicy;
using dataflow::LoaderReconfig;
using dataflow::Schedule;
using tuner::Bottleneck;
using tuner::PipelineTuner;
using tuner::TunerDecision;
using tuner::TunerOptions;
using tuner::TunerSignals;

/** Fresh global metrics state per test: enabled on, values zeroed. */
class TunerTest : public ::testing::Test
{
  protected:
    TunerTest() : enable_(true)
    {
        metrics::MetricsRegistry::instance().reset();
    }
    ~TunerTest() override
    {
        metrics::MetricsRegistry::instance().reset();
    }

  private:
    metrics::ScopedEnable enable_;
};

LoaderReconfig
badStart()
{
    LoaderReconfig config;
    config.num_workers = 1;
    config.prefetch_factor = 1;
    config.schedule = Schedule::kRoundRobin;
    config.read_ahead_depth = 0;
    config.io_threads = 0;
    return config;
}

/** A decode-CPU-bound interval: the consumer is nearly always in the
 *  [T2] wait, no store I/O in sight. */
TunerSignals
decodeBoundSignals()
{
    TunerSignals signals;
    signals.interval_s = 1.0;
    signals.batches = 12;
    signals.wait_s = 0.90;
    signals.fetch_busy_s = 0.95;
    signals.observed_workers = 1;
    return signals;
}

TEST_F(TunerTest, SignalsExtractFromSnapshotDelta)
{
    metrics::Snapshot delta;
    delta.taken_at = 2'000'000'000; // 2 s
    delta.counters["lotus_loader_batches_total"] = 10;
    delta.counters["lotus_loader_ooo_batches_total"] = 3;
    delta.counters["lotus_loader_wait_ns_total"] = 500'000'000;
    delta.counters[dataflow::kReadAheadHitsMetric] = 90;
    delta.counters[dataflow::kReadAheadMissesMetric] = 10;
    auto &w0 = delta.histograms[metrics::labeled("lotus_loader_fetch_ns",
                                                 "worker", "0")];
    w0.count = 5;
    w0.sum = 600'000'000;
    auto &w1 = delta.histograms[metrics::labeled("lotus_loader_fetch_ns",
                                                 "worker", "1")];
    w1.count = 5;
    w1.sum = 400'000'000;
    auto &store = delta.histograms[pipeline::kStoreReadNsMetric];
    store.count = 40;
    store.sum = 200'000'000;
    auto &collate = delta.histograms[metrics::labeled(
        "lotus_pipeline_op_ns", "op", "Collate")];
    collate.count = 10;
    collate.sum = 50'000'000;

    const TunerSignals signals = tuner::signalsFromSnapshot(delta);
    EXPECT_DOUBLE_EQ(signals.interval_s, 2.0);
    EXPECT_DOUBLE_EQ(signals.batches, 10.0);
    EXPECT_DOUBLE_EQ(signals.ooo_batches, 3.0);
    EXPECT_DOUBLE_EQ(signals.wait_s, 0.5);
    EXPECT_DOUBLE_EQ(signals.fetch_busy_s, 1.0);
    EXPECT_DOUBLE_EQ(signals.store_read_s, 0.2);
    EXPECT_DOUBLE_EQ(signals.store_reads, 40.0);
    EXPECT_DOUBLE_EQ(signals.collate_s, 0.05);
    EXPECT_DOUBLE_EQ(signals.readahead_hits, 90.0);
    EXPECT_DOUBLE_EQ(signals.readahead_misses, 10.0);
    EXPECT_EQ(signals.observed_workers, 2);
    EXPECT_DOUBLE_EQ(signals.oooRatio(), 0.3);
    EXPECT_DOUBLE_EQ(signals.missRatio(), 0.1);
    EXPECT_DOUBLE_EQ(signals.storeFraction(), 0.2);
}

TEST_F(TunerTest, NoTrafficKeepsConfig)
{
    PipelineTuner tuner(badStart());
    TunerSignals signals; // all zero
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kUnknown);
    EXPECT_FALSE(decision.changed);
    EXPECT_EQ(decision.config, badStart());
}

TEST_F(TunerTest, DecodeBoundRaisesWorkersToDemand)
{
    TunerOptions options;
    options.max_workers = 8;
    PipelineTuner tuner(badStart(), options);
    const TunerDecision decision = tuner.decide(decodeBoundSignals());
    EXPECT_EQ(decision.bottleneck, Bottleneck::kDecodeCpu);
    EXPECT_TRUE(decision.changed);
    // Demand 0.95 worker-seconds against a 0.1 s consumer budget wants
    // ~10 workers; the ceiling clamps to 8.
    EXPECT_EQ(decision.config.num_workers, 8);
    EXPECT_GE(decision.config.prefetch_factor, options.min_prefetch);
    // One straggler-free interval never flips the schedule.
    EXPECT_EQ(decision.config.schedule, Schedule::kRoundRobin);
}

TEST_F(TunerTest, DecodeBoundNeverLowersWorkers)
{
    LoaderReconfig at_max = badStart();
    at_max.num_workers = 8;
    at_max.prefetch_factor = 2;
    PipelineTuner tuner(at_max);
    TunerSignals signals = decodeBoundSignals();
    signals.fetch_busy_s = 0.5; // demand ~5 workers
    signals.wait_s = 0.5;
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kDecodeCpu);
    // Hysteresis: pipeline-bound intervals only grow the fleet.
    EXPECT_EQ(decision.config.num_workers, 8);
}

TEST_F(TunerTest, ConsumerBoundTrimsWorkersToMeasuredDemand)
{
    LoaderReconfig config = badStart();
    config.num_workers = 4;
    config.prefetch_factor = 2;
    PipelineTuner tuner(config);
    TunerSignals signals;
    signals.interval_s = 1.0;
    signals.batches = 12;
    signals.wait_s = 0.01; // the consumer almost never waits
    signals.fetch_busy_s = 1.6;
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kConsumer);
    EXPECT_EQ(decision.config.num_workers, 2); // ceil(1.6 cores)
}

TEST_F(TunerTest, ConsumerBoundNeverRaisesWorkers)
{
    LoaderReconfig config = badStart();
    config.num_workers = 2;
    PipelineTuner tuner(config);
    TunerSignals signals;
    signals.interval_s = 1.0;
    signals.batches = 12;
    signals.wait_s = 0.01;
    signals.fetch_busy_s = 6.0; // demand 6 cores, but consumer-bound
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kConsumer);
    EXPECT_EQ(decision.config.num_workers, 2);
}

TEST_F(TunerTest, StoreBoundEnablesReadAheadByLittlesLaw)
{
    TunerOptions options;
    options.max_workers = 4;
    PipelineTuner tuner(badStart(), options);
    TunerSignals signals;
    signals.interval_s = 1.0;
    signals.batches = 12;
    signals.wait_s = 0.90;
    signals.fetch_busy_s = 0.96;
    signals.store_read_s = 0.72; // 75% of fetch time is store I/O
    signals.store_reads = 96;    // mean read 7.5 ms
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kStoreIo);
    EXPECT_TRUE(decision.changed);
    EXPECT_GT(decision.config.read_ahead_depth, 0);
    EXPECT_LE(decision.config.read_ahead_depth,
              options.max_read_ahead_depth);
    EXPECT_EQ(decision.config.io_threads,
              options.read_ahead_io_threads);
    // Decode demand (0.24 worker-seconds) also sizes the fleet.
    EXPECT_GE(decision.config.num_workers, 2);
}

TEST_F(TunerTest, ShallowWindowWithMissesDoublesDepth)
{
    LoaderReconfig config = badStart();
    config.num_workers = 4;
    config.read_ahead_depth = 8;
    config.io_threads = 2;
    PipelineTuner tuner(config);
    TunerSignals signals;
    signals.interval_s = 1.0;
    signals.batches = 12;
    signals.wait_s = 0.8;
    signals.fetch_busy_s = 0.4;
    signals.store_read_s = 0.6; // off-thread reads still dominate
    signals.store_reads = 96;
    signals.readahead_hits = 60;
    signals.readahead_misses = 36; // miss ratio 0.375
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kStoreIo);
    EXPECT_EQ(decision.config.read_ahead_depth, 16);
}

TEST_F(TunerTest, SaturatedIoThreadsDeepenWindowWithoutMisses)
{
    // Claims that block on in-flight entries count as hits, so a
    // too-shallow window can show a ~0 miss ratio while the I/O
    // threads never leave the store. The utilization term catches it.
    LoaderReconfig config = badStart();
    config.num_workers = 1;
    config.prefetch_factor = 2;
    config.read_ahead_depth = 8;
    config.io_threads = 2;
    PipelineTuner tuner(config);
    TunerSignals signals;
    signals.interval_s = 0.1;
    signals.batches = 12;
    signals.wait_s = 0.08;
    signals.fetch_busy_s = 0.06;
    signals.store_read_s = 0.16; // 2 io threads x 80% of the interval
    signals.store_reads = 30;
    signals.readahead_hits = 96;
    signals.readahead_misses = 0;
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kStoreIo);
    EXPECT_EQ(decision.config.read_ahead_depth, 16);
}

TEST_F(TunerTest, HiddenStoreTimeIsNotStoreBound)
{
    LoaderReconfig config = badStart();
    config.num_workers = 4;
    config.prefetch_factor = 2;
    config.read_ahead_depth = 32;
    config.io_threads = 2;
    PipelineTuner tuner(config);
    TunerSignals signals;
    signals.interval_s = 1.0;
    signals.batches = 12;
    signals.wait_s = 0.5;
    signals.fetch_busy_s = 0.4;
    signals.store_read_s = 0.6; // large, but fully overlapped:
    signals.store_reads = 96;
    signals.readahead_hits = 96; // every claim hit the window
    signals.readahead_misses = 0;
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_NE(decision.bottleneck, Bottleneck::kStoreIo);
}

TEST_F(TunerTest, CollateShareClassifiesCollateBound)
{
    LoaderReconfig config = badStart();
    config.num_workers = 2;
    config.prefetch_factor = 2;
    PipelineTuner tuner(config);
    TunerSignals signals;
    signals.interval_s = 1.0;
    signals.batches = 12;
    signals.wait_s = 0.8;
    signals.fetch_busy_s = 1.0;
    signals.collate_s = 0.5; // half the busy time is collate
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kCollate);
}

TEST_F(TunerTest, SentinelRatioFlipsRoundRobinToWorkStealing)
{
    LoaderReconfig config = badStart();
    config.num_workers = 4;
    config.prefetch_factor = 2;
    PipelineTuner tuner(config);
    TunerSignals signals = decodeBoundSignals();
    signals.ooo_batches = 5; // ratio 5/12 > 0.25
    const TunerDecision decision = tuner.decide(signals);
    EXPECT_EQ(decision.config.schedule, Schedule::kWorkStealing);

    // The flip is gated off for characterization runs.
    TunerOptions no_flip;
    no_flip.allow_schedule_flip = false;
    PipelineTuner pinned(config, no_flip);
    const TunerDecision kept = pinned.decide(signals);
    EXPECT_EQ(kept.config.schedule, Schedule::kRoundRobin);
}

TEST_F(TunerTest, SingleWorkerNeverFlipsSchedule)
{
    TunerOptions options;
    options.max_workers = 1; // fleet pinned to one worker
    PipelineTuner tuner(badStart(), options);
    TunerSignals signals = decodeBoundSignals();
    signals.ooo_batches = 6;
    const TunerDecision decision = tuner.decide(signals);
    // Stealing needs peers; one worker keeps round-robin.
    EXPECT_EQ(decision.config.schedule, Schedule::kRoundRobin);
}

TEST_F(TunerTest, OnEpochEndDiffsAndPublishesGauges)
{
    auto &registry = metrics::MetricsRegistry::instance();
    PipelineTuner tuner(badStart());
    const TunerDecision baseline = tuner.onEpochEnd(registry.snapshot());
    EXPECT_EQ(baseline.bottleneck, Bottleneck::kUnknown);

    // One decode-bound epoch's worth of traffic.
    registry.counter("lotus_loader_batches_total")->add(12);
    registry.counter("lotus_loader_wait_ns_total")->add(900'000'000);
    auto *fetch = registry.histogram(
        metrics::labeled("lotus_loader_fetch_ns", "worker", "0"));
    for (int i = 0; i < 12; ++i)
        fetch->record(80'000'000);
    metrics::Snapshot snapshot = registry.snapshot();
    snapshot.taken_at = baseline.changed
                            ? snapshot.taken_at
                            : snapshot.taken_at + 1'000'000'000;
    const TunerDecision decision = tuner.onEpochEnd(snapshot);
    EXPECT_EQ(decision.bottleneck, Bottleneck::kDecodeCpu);
    EXPECT_GT(decision.config.num_workers, 1);

    EXPECT_EQ(registry.counter(tuner::kTunerDecisionsMetric)->value(),
              2u);
    EXPECT_EQ(registry.gauge(tuner::kTunerWorkersMetric)->value(),
              decision.config.num_workers);
    EXPECT_EQ(registry.gauge(tuner::kTunerBottleneckMetric)->value(),
              static_cast<int>(Bottleneck::kDecodeCpu));
}

// --- Epoch-boundary reconfiguration on a live loader ---------------

std::shared_ptr<pipeline::InMemoryStore>
makeEncodedStore(int count)
{
    auto store = std::make_shared<pipeline::InMemoryStore>();
    Rng rng(55);
    for (int i = 0; i < count; ++i)
        store->add(image::codec::encode(image::synthesize(rng, 16, 16)));
    return store;
}

/** ImageFolder whose chain starts with a random flip: the per-sample
 *  rng stream is live, so any execution-order leak would break the
 *  bit-identity checks below. */
std::shared_ptr<pipeline::ImageFolderDataset>
makeDataset(std::shared_ptr<const pipeline::BlobStore> store)
{
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(
        std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::make_shared<pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/1 << 20);
}

std::vector<std::uint8_t>
epochBytes(DataLoader &loader)
{
    loader.startEpoch();
    std::vector<std::uint8_t> bytes;
    while (auto batch = loader.next()) {
        const std::uint8_t *raw = batch->data.raw();
        bytes.insert(bytes.end(), raw, raw + batch->data.byteSize());
        for (const std::int64_t label : batch->labels) {
            const auto *p =
                reinterpret_cast<const std::uint8_t *>(&label);
            bytes.insert(bytes.end(), p, p + sizeof(label));
        }
    }
    return bytes;
}

TEST_F(TunerTest, ReconfigureIsFatalMidEpoch)
{
    auto dataset = makeDataset(makeEncodedStore(16));
    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(),
                      options);
    loader.startEpoch();
    ASSERT_TRUE(loader.next().has_value());
    LoaderReconfig next = loader.currentConfig();
    next.num_workers = 4;
    EXPECT_EXIT(loader.reconfigure(next),
                ::testing::ExitedWithCode(1), "epoch-boundary only");
}

TEST_F(TunerTest, ReconfigureRevalidatesLikeTheConstructor)
{
    auto dataset = makeDataset(makeEncodedStore(16));
    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 1;
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(),
                      options);
    LoaderReconfig bad = loader.currentConfig();
    bad.num_workers = -1;
    EXPECT_EXIT(loader.reconfigure(bad), ::testing::ExitedWithCode(1),
                "num_workers must be >= 0");
    LoaderReconfig mismatched = loader.currentConfig();
    mismatched.read_ahead_depth = 8; // io_threads left at 0
    EXPECT_EXIT(loader.reconfigure(mismatched),
                ::testing::ExitedWithCode(1),
                "must be enabled together");
}

TEST_F(TunerTest, ReconfigureRebuildsWorkersAndReadAhead)
{
    auto dataset = makeDataset(makeEncodedStore(24));
    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 1;
    options.prefetch_factor = 1;
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(),
                      options);
    EXPECT_EQ(loader.readAhead(), nullptr);
    EXPECT_FALSE(epochBytes(loader).empty());

    LoaderReconfig next;
    next.num_workers = 2;
    next.prefetch_factor = 2;
    next.schedule = Schedule::kWorkStealing;
    next.read_ahead_depth = 8;
    next.io_threads = 2;
    loader.reconfigure(next);
    EXPECT_EQ(loader.currentConfig(), next);
    ASSERT_NE(loader.readAhead(), nullptr);
    EXPECT_EQ(loader.readAhead()->options().depth, 8);
    EXPECT_FALSE(epochBytes(loader).empty());

    // Depth back through 0 tears the engine down.
    next.read_ahead_depth = 0;
    next.io_threads = 0;
    loader.reconfigure(next);
    EXPECT_EQ(loader.readAhead(), nullptr);
    EXPECT_FALSE(epochBytes(loader).empty());
}

TEST_F(TunerTest, ReconfigurePreservesBitIdentityAcrossPolicies)
{
    // The satellite contract: a loader that starts badly configured
    // and is re-tuned at epoch boundaries must produce byte-identical
    // epochs to a fixed loader running the final parameters from the
    // start — under every ErrorPolicy and cache policy.
    auto store = makeEncodedStore(24);
    const ErrorPolicy policies[] = {ErrorPolicy::kFail,
                                    ErrorPolicy::kSkip,
                                    ErrorPolicy::kRetry};
    const CachePolicy caches[] = {CachePolicy::kNone,
                                  CachePolicy::kMemory,
                                  CachePolicy::kMaterialize};
    for (const ErrorPolicy policy : policies) {
        for (const CachePolicy cache : caches) {
            SCOPED_TRACE(strFormat("policy=%d cache=%d",
                                   static_cast<int>(policy),
                                   static_cast<int>(cache)));
            auto dataset = makeDataset(store);

            DataLoaderOptions base;
            base.batch_size = 4;
            base.shuffle = true;
            base.seed = 77;
            base.error_policy = policy;
            base.cache_policy = cache;
            if (cache != CachePolicy::kNone)
                base.cache_budget_bytes = 64 << 20;
            TempDir fixed_dir("lotus-tuner-fixed");
            TempDir tuned_dir("lotus-tuner-tuned");
            if (cache == CachePolicy::kMaterialize)
                base.materialize_dir = fixed_dir.path();

            // Final parameters, fixed from the start.
            LoaderReconfig final_config;
            final_config.num_workers = 2;
            final_config.prefetch_factor = 2;
            final_config.schedule = Schedule::kWorkStealing;
            final_config.read_ahead_depth = 8;
            final_config.io_threads = 2;

            DataLoaderOptions fixed = base;
            fixed.num_workers = final_config.num_workers;
            fixed.prefetch_factor = final_config.prefetch_factor;
            fixed.schedule = final_config.schedule;
            fixed.read_ahead_depth = final_config.read_ahead_depth;
            fixed.io_threads = final_config.io_threads;
            DataLoader reference(
                dataset, std::make_shared<pipeline::StackCollate>(),
                fixed);

            // Deliberately bad start, re-tuned at each boundary.
            DataLoaderOptions tuned = base;
            tuned.num_workers = 1;
            tuned.prefetch_factor = 1;
            if (cache == CachePolicy::kMaterialize)
                tuned.materialize_dir = tuned_dir.path();
            DataLoader subject(
                dataset, std::make_shared<pipeline::StackCollate>(),
                tuned);

            LoaderReconfig mid;
            mid.num_workers = 2;
            mid.prefetch_factor = 2;
            mid.schedule = Schedule::kRoundRobin;
            mid.read_ahead_depth = 4;
            mid.io_threads = 1;

            for (int epoch = 0; epoch < 3; ++epoch) {
                SCOPED_TRACE(strFormat("epoch=%d", epoch));
                EXPECT_EQ(epochBytes(subject), epochBytes(reference));
                if (epoch == 0)
                    subject.reconfigure(mid);
                else if (epoch == 1)
                    subject.reconfigure(final_config);
            }
        }
    }
}

TEST_F(TunerTest, LiveTunerConvergesOnHeavyTailedFixture)
{
    workloads::HeavyTailCostConfig cost;
    cost.median_cost = 200 * kMicrosecond;
    cost.straggler_fraction = 0.05;
    cost.straggler_multiplier = 10.0;
    auto dataset =
        std::make_shared<workloads::HeavyTailCostDataset>(48, cost);
    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 1;
    options.prefetch_factor = 1;
    DataLoader loader(dataset,
                      std::make_shared<pipeline::StackCollate>(),
                      options);

    TunerOptions tuner_options;
    tuner_options.max_workers = 4;
    PipelineTuner tuner(loader.currentConfig(), tuner_options);
    auto &registry = metrics::MetricsRegistry::instance();
    tuner.onEpochEnd(registry.snapshot()); // baseline

    for (int epoch = 0; epoch < 2; ++epoch) {
        loader.startEpoch();
        while (loader.next().has_value()) {
        }
        const TunerDecision decision =
            tuner.onEpochEnd(registry.snapshot());
        if (decision.changed)
            loader.reconfigure(decision.config);
    }
    // The consumer does nothing between next() calls, so the first
    // measured epoch is pipeline-bound and the demand model jumps the
    // fleet to its ceiling at once.
    EXPECT_EQ(loader.currentConfig().num_workers, 4);
    EXPECT_GE(
        registry.counter(tuner::kTunerDecisionsMetric)->value(), 3u);
}

// --- Replay parsers ------------------------------------------------

TEST_F(TunerTest, MetricsJsonRoundTripsIntoSnapshot)
{
    auto &registry = metrics::MetricsRegistry::instance();
    registry.counter("lotus_loader_batches_total")->add(42);
    registry.gauge("lotus_loader_data_queue_depth")->set(-3);
    auto *hist = registry.histogram(
        metrics::labeled("lotus_loader_fetch_ns", "worker", "0"));
    hist->record(1'000);
    hist->record(2'000'000);
    const metrics::Snapshot snapshot = registry.snapshot();
    const std::string json = metrics::toJson(snapshot, nullptr);

    const metrics::Snapshot parsed =
        tuner::snapshotFromMetricsJson(json);
    EXPECT_EQ(parsed.taken_at, snapshot.taken_at);
    EXPECT_EQ(parsed.counters, snapshot.counters);
    EXPECT_EQ(parsed.gauges, snapshot.gauges);
    ASSERT_EQ(parsed.histograms.size(), snapshot.histograms.size());
    for (const auto &[name, h] : snapshot.histograms) {
        const auto &p = parsed.histograms.at(name);
        EXPECT_EQ(p.count, h.count) << name;
        EXPECT_EQ(p.sum, h.sum) << name;
        EXPECT_EQ(p.buckets, h.buckets) << name;
        EXPECT_EQ(p.p99, h.p99) << name;
    }
}

trace::ChromeEvent
completeEvent(const char *name, const char *category, double ts_us,
              double dur_us, std::int64_t pid)
{
    trace::ChromeEvent event;
    event.name = name;
    event.category = category;
    event.phase = 'X';
    event.ts_us = ts_us;
    event.dur_us = dur_us;
    event.pid = pid;
    event.tid = pid;
    return event;
}

TEST_F(TunerTest, ChromeEventsYieldSignals)
{
    std::vector<trace::ChromeEvent> events;
    // Two workers' batch spans.
    events.push_back(
        completeEvent("SBatchPreprocessed_0", "preprocess", 0, 40'000, 2));
    events.push_back(
        completeEvent("SBatchPreprocessed_1", "preprocess", 0, 60'000, 3));
    events.push_back(completeEvent("SBatchPreprocessed_2", "preprocess",
                                   40'000, 50'000, 2));
    // Consumer waits: one real, one out-of-order sentinel (1 us).
    events.push_back(completeEvent("SBatchWait_0", "wait", 0, 35'000, 1));
    events.push_back(completeEvent("SBatchWait_1", "wait", 60'000, 1, 1));
    events.push_back(completeEvent("SBatchWait_2", "wait", 61'000,
                                   29'000, 1));
    for (int b = 0; b < 3; ++b)
        events.push_back(completeEvent(
            strFormat("SBatchConsumed_%d", b).c_str(), "consume",
            90'000 + 100 * b, 50, 1));
    // Store reads and a collate op inside the worker spans.
    events.push_back(completeEvent("io:1024", "io", 100, 5'000, 2));
    events.push_back(completeEvent("io:1024", "io", 200, 7'000, 3));
    events.push_back(completeEvent("SCollate", "op", 40'500, 2'000, 2));

    const TunerSignals signals =
        tuner::signalsFromChromeEvents(events);
    EXPECT_DOUBLE_EQ(signals.batches, 3.0);
    EXPECT_DOUBLE_EQ(signals.ooo_batches, 1.0);
    EXPECT_NEAR(signals.wait_s, 0.064001, 1e-9);
    EXPECT_NEAR(signals.fetch_busy_s, 0.150, 1e-9);
    EXPECT_NEAR(signals.store_read_s, 0.012, 1e-9);
    EXPECT_DOUBLE_EQ(signals.store_reads, 2.0);
    EXPECT_NEAR(signals.collate_s, 0.002, 1e-9);
    EXPECT_EQ(signals.observed_workers, 2);
    EXPECT_GT(signals.interval_s, 0.0);
}

} // namespace
} // namespace lotus
