/**
 * @file
 * Unit and property tests for the LJPG codec: bit I/O, DCT,
 * quantization, zigzag, and full encode/decode round trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "image/codec/bitio.h"
#include "image/codec/codec.h"
#include "image/codec/color.h"
#include "image/codec/dct.h"
#include "image/synth.h"

namespace lotus::image::codec {
namespace {

TEST(BitIo, BitsRoundTrip)
{
    BitWriter writer;
    writer.putBits(0b101, 3);
    writer.putBits(0xFFFF, 16);
    writer.putBits(0, 1);
    const std::string bytes = writer.take();
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    EXPECT_EQ(reader.getBits(3), 0b101u);
    EXPECT_EQ(reader.getBits(16), 0xFFFFu);
    EXPECT_EQ(reader.getBits(1), 0u);
    EXPECT_FALSE(reader.overrun());
}

TEST(BitIo, ExpGolombUnsignedRoundTrip)
{
    BitWriter writer;
    const std::uint32_t values[] = {0, 1, 2, 3, 62, 63, 64, 255, 100000};
    for (const auto v : values)
        writer.putUe(v);
    const std::string bytes = writer.take();
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    for (const auto v : values)
        EXPECT_EQ(reader.getUe(), v);
}

TEST(BitIo, ExpGolombSignedRoundTrip)
{
    BitWriter writer;
    const std::int32_t values[] = {0, 1, -1, 2, -2, 1000, -1000, 32767};
    for (const auto v : values)
        writer.putSe(v);
    const std::string bytes = writer.take();
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    for (const auto v : values)
        EXPECT_EQ(reader.getSe(), v);
}

TEST(BitIo, RandomizedGolombRoundTrip)
{
    Rng rng(99);
    std::vector<std::int32_t> values;
    BitWriter writer;
    for (int i = 0; i < 5000; ++i) {
        const auto v =
            static_cast<std::int32_t>(rng.uniformInt(-100000, 100000));
        values.push_back(v);
        writer.putSe(v);
    }
    const std::string bytes = writer.take();
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    for (const auto v : values)
        EXPECT_EQ(reader.getSe(), v);
    EXPECT_FALSE(reader.overrun());
}

TEST(BitIo, OverrunDetected)
{
    const std::uint8_t byte = 0xAB;
    BitReader reader(&byte, 1);
    reader.getBits(8);
    EXPECT_FALSE(reader.overrun());
    reader.getBits(1);
    EXPECT_TRUE(reader.overrun());
}

TEST(BitIo, AlignByte)
{
    BitWriter writer;
    writer.putBits(1, 1);
    writer.alignByte();
    writer.putBits(0xAA, 8);
    const std::string bytes = writer.take();
    ASSERT_EQ(bytes.size(), 2u);
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    reader.getBits(1);
    reader.alignByte();
    EXPECT_EQ(reader.getBits(8), 0xAAu);
}

TEST(Dct, RoundTripIsNearIdentity)
{
    Rng rng(5);
    Block spatial, freq, back;
    for (auto &v : spatial)
        v = static_cast<float>(rng.uniform(-128.0, 127.0));
    forwardDct(spatial, freq);
    inverseDct(freq, back);
    for (int i = 0; i < kBlockSize; ++i)
        EXPECT_NEAR(back[static_cast<std::size_t>(i)],
                    spatial[static_cast<std::size_t>(i)], 1e-3);
}

TEST(Dct, ConstantBlockConcentratesInDc)
{
    Block spatial, freq;
    spatial.fill(100.0f);
    forwardDct(spatial, freq);
    EXPECT_NEAR(freq[0], 800.0f, 1e-2); // 8 * value
    for (int i = 1; i < kBlockSize; ++i)
        EXPECT_NEAR(freq[static_cast<std::size_t>(i)], 0.0f, 1e-3);
}

TEST(Dct, ZigzagIsAPermutation)
{
    const auto &zz = zigzagOrder();
    std::set<int> seen(zz.begin(), zz.end());
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 63);
    // Canonical JPEG start of the scan.
    EXPECT_EQ(zz[0], 0);
    EXPECT_EQ(zz[1], 1);
    EXPECT_EQ(zz[2], 8);
    EXPECT_EQ(zz[3], 16);
    EXPECT_EQ(zz[4], 9);
    EXPECT_EQ(zz[5], 2);
}

TEST(Dct, QuantTablesScaleWithQuality)
{
    const auto q10 = quantTable(10, false);
    const auto q50 = quantTable(50, false);
    const auto q95 = quantTable(95, false);
    for (int i = 0; i < 64; ++i) {
        EXPECT_GE(q10[static_cast<std::size_t>(i)],
                  q50[static_cast<std::size_t>(i)]);
        EXPECT_GE(q50[static_cast<std::size_t>(i)],
                  q95[static_cast<std::size_t>(i)]);
        EXPECT_GE(q95[static_cast<std::size_t>(i)], 1);
    }
    // Quality 50 is the unscaled base table.
    EXPECT_EQ(q50[0], 16);
}

TEST(Dct, QuantizeDequantizeApproximates)
{
    Block freq, back;
    QuantBlock q;
    freq.fill(0.0f);
    freq[0] = 500.0f;
    freq[1] = -80.0f;
    const auto table = quantTable(75, false);
    quantize(freq, table, q);
    dequantize(q, table, back);
    EXPECT_NEAR(back[0], 500.0f, table[0] / 2.0 + 1e-3);
    EXPECT_NEAR(back[1], -80.0f, table[1] / 2.0 + 1e-3);
}

TEST(Color, RgbYccRoundTripClose)
{
    Rng rng(3);
    Image img = synthesize(rng, 32, 24);
    Plane y, cb, cr;
    rgbToYcc(img, y, cb, cr);
    Image back = yccToRgb(y, cb, cr);
    ASSERT_TRUE(back.sameSize(img));
    double max_err = 0.0;
    for (int row = 0; row < img.height(); ++row) {
        for (int col = 0; col < img.width() * 3; ++col) {
            max_err = std::max(
                max_err, std::abs(static_cast<double>(img.row(row)[col]) -
                                  back.row(row)[col]));
        }
    }
    EXPECT_LE(max_err, 2.0);
}

TEST(Color, UpsampleDoublesDimensions)
{
    Plane half(3, 2);
    half.row(0)[0] = 10.0f;
    const Plane full = upsample2x(half, 6, 4);
    EXPECT_EQ(full.width, 6);
    EXPECT_EQ(full.height, 4);
}

double
psnr(const Image &a, const Image &b)
{
    double mse = 0.0;
    const auto n = static_cast<double>(a.byteSize());
    for (int y = 0; y < a.height(); ++y) {
        for (int i = 0; i < a.width() * 3; ++i) {
            const double d = static_cast<double>(a.row(y)[i]) - b.row(y)[i];
            mse += d * d;
        }
    }
    mse /= n;
    return mse == 0.0 ? 99.0 : 10.0 * std::log10(255.0 * 255.0 / mse);
}

TEST(Codec, RoundTripHighQualityIsFaithful)
{
    Rng rng(11);
    Image img = synthesize(rng, 64, 48, SynthOptions{0.3, 2});
    const std::string encoded = encode(img, EncodeOptions{95, false});
    Image decoded = decode(encoded);
    ASSERT_TRUE(decoded.sameSize(img));
    EXPECT_GT(psnr(img, decoded), 30.0);
}

TEST(Codec, SubsampledRoundTripStillReasonable)
{
    Rng rng(12);
    Image img = synthesize(rng, 64, 64, SynthOptions{0.3, 2});
    Image decoded = decode(encode(img, EncodeOptions{90, true}));
    EXPECT_GT(psnr(img, decoded), 26.0);
}

TEST(Codec, LowerQualityMeansSmallerOutput)
{
    Rng rng(13);
    Image img = synthesize(rng, 96, 96, SynthOptions{0.6, 3});
    const auto high = encode(img, EncodeOptions{95, true}).size();
    const auto mid = encode(img, EncodeOptions{60, true}).size();
    const auto low = encode(img, EncodeOptions{15, true}).size();
    EXPECT_GT(high, mid);
    EXPECT_GT(mid, low);
}

TEST(Codec, MoreDetailMeansLargerOutput)
{
    Rng rng1(14), rng2(14);
    Image flat = synthesize(rng1, 96, 96, SynthOptions{0.05, 0});
    Image busy = synthesize(rng2, 96, 96, SynthOptions{0.95, 6});
    EXPECT_GT(encode(busy).size(), encode(flat).size() * 2);
}

TEST(Codec, HeaderRoundTrip)
{
    Rng rng(15);
    Image img = synthesize(rng, 50, 34);
    const std::string encoded = encode(img, EncodeOptions{70, true});
    const LjpgHeader header = peekHeader(encoded);
    EXPECT_EQ(header.width, 50);
    EXPECT_EQ(header.height, 34);
    EXPECT_EQ(header.quality, 70);
    EXPECT_TRUE(header.subsampled);
}

TEST(Codec, OddDimensionsRoundTrip)
{
    Rng rng(16);
    Image img = synthesize(rng, 37, 23, SynthOptions{0.4, 1});
    Image decoded = decode(encode(img, EncodeOptions{85, true}));
    EXPECT_EQ(decoded.width(), 37);
    EXPECT_EQ(decoded.height(), 23);
    EXPECT_GT(psnr(img, decoded), 22.0);
}

TEST(Codec, RejectsGarbage)
{
    EXPECT_DEATH(decode("garbage data here"), "");
}

TEST(Codec, RejectsTruncatedPayloadCleanly)
{
    Rng rng(31);
    Image img = synthesize(rng, 48, 48);
    const std::string encoded = encode(img);
    // Chop the entropy payload: the decoder must exit with a clear
    // error, never crash or emit a half-decoded image.
    const std::string truncated = encoded.substr(0, encoded.size() / 3);
    EXPECT_DEATH(decode(truncated), "corrupt LJPG");
}

TEST(Codec, RejectsBitFlippedHeader)
{
    Rng rng(32);
    Image img = synthesize(rng, 32, 32);
    std::string encoded = encode(img);
    encoded[8] = static_cast<char>(200); // quality byte out of range
    EXPECT_DEATH(decode(encoded), "corrupt LJPG header");
}

TEST(Codec, TinyImageRoundTrip)
{
    Image img(2, 2);
    img.pixel(0, 0)[0] = 200;
    img.pixel(1, 1)[2] = 100;
    Image decoded = decode(encode(img, EncodeOptions{90, false}));
    EXPECT_EQ(decoded.width(), 2);
    EXPECT_EQ(decoded.height(), 2);
}

/** Property sweep: round trip across sizes and qualities. */
class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>>
{
};

TEST_P(CodecRoundTrip, DecodeMatchesDimensionsAndQuality)
{
    const auto [width, height, quality, subsample] = GetParam();
    Rng rng(static_cast<std::uint64_t>(width * 1000 + height));
    Image img = synthesize(rng, width, height, SynthOptions{0.5, 2});
    Image decoded =
        decode(encode(img, EncodeOptions{quality, subsample}));
    ASSERT_EQ(decoded.width(), width);
    ASSERT_EQ(decoded.height(), height);
    const double floor = quality >= 80 ? 24.0 : 18.0;
    EXPECT_GT(psnr(img, decoded), floor)
        << width << "x" << height << " q" << quality;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CodecRoundTrip,
    ::testing::Combine(::testing::Values(8, 17, 64, 129),
                       ::testing::Values(8, 33, 64),
                       ::testing::Values(40, 85),
                       ::testing::Bool()));

} // namespace
} // namespace lotus::image::codec
