/**
 * @file
 * Unit and property tests for the LJPG codec: bit I/O, DCT,
 * quantization, zigzag, and full encode/decode round trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "image/codec/bitio.h"
#include "image/codec/codec.h"
#include "image/codec/color.h"
#include "image/codec/dct.h"
#include "image/synth.h"

namespace lotus::image::codec {
namespace {

TEST(BitIo, BitsRoundTrip)
{
    BitWriter writer;
    writer.putBits(0b101, 3);
    writer.putBits(0xFFFF, 16);
    writer.putBits(0, 1);
    const std::string bytes = writer.take();
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    EXPECT_EQ(reader.getBits(3), 0b101u);
    EXPECT_EQ(reader.getBits(16), 0xFFFFu);
    EXPECT_EQ(reader.getBits(1), 0u);
    EXPECT_FALSE(reader.overrun());
}

TEST(BitIo, ExpGolombUnsignedRoundTrip)
{
    BitWriter writer;
    const std::uint32_t values[] = {0, 1, 2, 3, 62, 63, 64, 255, 100000};
    for (const auto v : values)
        writer.putUe(v);
    const std::string bytes = writer.take();
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    for (const auto v : values)
        EXPECT_EQ(reader.getUe(), v);
}

TEST(BitIo, ExpGolombSignedRoundTrip)
{
    BitWriter writer;
    const std::int32_t values[] = {0, 1, -1, 2, -2, 1000, -1000, 32767};
    for (const auto v : values)
        writer.putSe(v);
    const std::string bytes = writer.take();
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    for (const auto v : values)
        EXPECT_EQ(reader.getSe(), v);
}

TEST(BitIo, RandomizedGolombRoundTrip)
{
    Rng rng(99);
    std::vector<std::int32_t> values;
    BitWriter writer;
    for (int i = 0; i < 5000; ++i) {
        const auto v =
            static_cast<std::int32_t>(rng.uniformInt(-100000, 100000));
        values.push_back(v);
        writer.putSe(v);
    }
    const std::string bytes = writer.take();
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    for (const auto v : values)
        EXPECT_EQ(reader.getSe(), v);
    EXPECT_FALSE(reader.overrun());
}

TEST(BitIo, OverrunDetected)
{
    const std::uint8_t byte = 0xAB;
    BitReader reader(&byte, 1);
    reader.getBits(8);
    EXPECT_FALSE(reader.overrun());
    reader.getBits(1);
    EXPECT_TRUE(reader.overrun());
}

TEST(BitIo, OutOfRangeCountSetsOverrun)
{
    // Corrupt Exp-Golomb prefixes can ask for absurd bit counts; the
    // reader must flag overrun instead of asserting (bitstream
    // contents are untrusted input).
    const std::uint8_t bytes[4] = {1, 2, 3, 4};
    BitReader wide(bytes, sizeof(bytes));
    EXPECT_EQ(wide.getBits(40), 0u);
    EXPECT_TRUE(wide.overrun());
    BitReader negative(bytes, sizeof(bytes));
    EXPECT_EQ(negative.getBits(-1), 0u);
    EXPECT_TRUE(negative.overrun());
}

TEST(BitIo, AlignByte)
{
    BitWriter writer;
    writer.putBits(1, 1);
    writer.alignByte();
    writer.putBits(0xAA, 8);
    const std::string bytes = writer.take();
    ASSERT_EQ(bytes.size(), 2u);
    BitReader reader(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                     bytes.size());
    reader.getBits(1);
    reader.alignByte();
    EXPECT_EQ(reader.getBits(8), 0xAAu);
}

TEST(Dct, RoundTripIsNearIdentity)
{
    Rng rng(5);
    Block spatial, freq, back;
    for (auto &v : spatial)
        v = static_cast<float>(rng.uniform(-128.0, 127.0));
    forwardDct(spatial, freq);
    inverseDct(freq, back);
    for (int i = 0; i < kBlockSize; ++i)
        EXPECT_NEAR(back[static_cast<std::size_t>(i)],
                    spatial[static_cast<std::size_t>(i)], 1e-3);
}

TEST(Dct, ConstantBlockConcentratesInDc)
{
    Block spatial, freq;
    spatial.fill(100.0f);
    forwardDct(spatial, freq);
    EXPECT_NEAR(freq[0], 800.0f, 1e-2); // 8 * value
    for (int i = 1; i < kBlockSize; ++i)
        EXPECT_NEAR(freq[static_cast<std::size_t>(i)], 0.0f, 1e-3);
}

TEST(Dct, ZigzagIsAPermutation)
{
    const auto &zz = zigzagOrder();
    std::set<int> seen(zz.begin(), zz.end());
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), 63);
    // Canonical JPEG start of the scan.
    EXPECT_EQ(zz[0], 0);
    EXPECT_EQ(zz[1], 1);
    EXPECT_EQ(zz[2], 8);
    EXPECT_EQ(zz[3], 16);
    EXPECT_EQ(zz[4], 9);
    EXPECT_EQ(zz[5], 2);
}

TEST(Dct, QuantTablesScaleWithQuality)
{
    const auto q10 = quantTable(10, false);
    const auto q50 = quantTable(50, false);
    const auto q95 = quantTable(95, false);
    for (int i = 0; i < 64; ++i) {
        EXPECT_GE(q10[static_cast<std::size_t>(i)],
                  q50[static_cast<std::size_t>(i)]);
        EXPECT_GE(q50[static_cast<std::size_t>(i)],
                  q95[static_cast<std::size_t>(i)]);
        EXPECT_GE(q95[static_cast<std::size_t>(i)], 1);
    }
    // Quality 50 is the unscaled base table.
    EXPECT_EQ(q50[0], 16);
}

TEST(Dct, QuantizeDequantizeApproximates)
{
    Block freq, back;
    QuantBlock q;
    freq.fill(0.0f);
    freq[0] = 500.0f;
    freq[1] = -80.0f;
    const auto table = quantTable(75, false);
    quantize(freq, table, q);
    dequantize(q, table, back);
    EXPECT_NEAR(back[0], 500.0f, table[0] / 2.0 + 1e-3);
    EXPECT_NEAR(back[1], -80.0f, table[1] / 2.0 + 1e-3);
}

TEST(Color, RgbYccRoundTripClose)
{
    Rng rng(3);
    Image img = synthesize(rng, 32, 24);
    Plane y, cb, cr;
    rgbToYcc(img, y, cb, cr);
    Image back = yccToRgb(y, cb, cr);
    ASSERT_TRUE(back.sameSize(img));
    double max_err = 0.0;
    for (int row = 0; row < img.height(); ++row) {
        for (int col = 0; col < img.width() * 3; ++col) {
            max_err = std::max(
                max_err, std::abs(static_cast<double>(img.row(row)[col]) -
                                  back.row(row)[col]));
        }
    }
    EXPECT_LE(max_err, 2.0);
}

TEST(Color, UpsampleDoublesDimensions)
{
    Plane half(3, 2);
    half.row(0)[0] = 10.0f;
    const Plane full = upsample2x(half, 6, 4);
    EXPECT_EQ(full.width, 6);
    EXPECT_EQ(full.height, 4);
}

TEST(Color, IntegerUpsampleMatchesFloatReference)
{
    Rng rng(91);
    Plane half(13, 9);
    for (auto &s : half.samples)
        s = static_cast<float>(rng.uniform(0.0, 255.0));
    const Plane reference = upsample2x(half, 25, 17);
    const PlaneI16 fast = upsample2x(quantizePlane(half), 25, 17);
    ASSERT_EQ(fast.samples.size(), reference.samples.size());
    for (std::size_t i = 0; i < reference.samples.size(); ++i) {
        // 1/32 input quantization + 1/32 output rounding.
        const float got = static_cast<float>(fast.samples[i]) /
                          (1 << kSampleFracBits);
        EXPECT_NEAR(got, reference.samples[i], 0.1f) << "sample " << i;
    }
}

TEST(Color, IntegerYccToRgbMatchesFloatReference)
{
    Rng rng(92);
    Plane y(31, 17), cb(31, 17), cr(31, 17);
    for (auto *plane : {&y, &cb, &cr}) {
        for (auto &s : plane->samples)
            s = static_cast<float>(rng.uniform(0.0, 255.0));
    }
    const Image reference = yccToRgb(y, cb, cr);
    const Image fast =
        yccToRgb(quantizePlane(y), quantizePlane(cb), quantizePlane(cr));
    ASSERT_TRUE(fast.sameSize(reference));
    for (int row = 0; row < reference.height(); ++row) {
        for (int i = 0; i < reference.width() * 3; ++i) {
            EXPECT_LE(std::abs(static_cast<int>(fast.row(row)[i]) -
                               static_cast<int>(reference.row(row)[i])),
                      1)
                << "row " << row << " byte " << i;
        }
    }
}

/** Derive the entropy-decoder's sparsity summary from a raw block. */
CoeffExtent
extentOf(const QuantBlock &q)
{
    const auto &zz = zigzagOrder();
    CoeffExtent extent;
    for (int k = 0; k < kBlockSize; ++k) {
        if (q[static_cast<std::size_t>(zz[static_cast<std::size_t>(k)])] !=
            0) {
            ++extent.nonzero;
            if (k > 0)
                extent.last_zz = static_cast<std::int16_t>(k);
        }
    }
    return extent;
}

void
expectSparseMatchesDense(const QuantBlock &q, int quality)
{
    const auto table = quantTable(quality, false);
    Block freq, dense, sparse;
    dequantize(q, table, freq);
    inverseDct(freq, dense);
    dequantIdctSparse(q, table, extentOf(q), sparse);
    for (int i = 0; i < kBlockSize; ++i)
        EXPECT_NEAR(sparse[static_cast<std::size_t>(i)],
                    dense[static_cast<std::size_t>(i)], 1e-3)
            << "sample " << i;
}

TEST(SparseIdct, DcOnlyBlock)
{
    QuantBlock q{};
    q[0] = 37;
    expectSparseMatchesDense(q, 75);
}

TEST(SparseIdct, AllZeroBlock)
{
    QuantBlock q{};
    expectSparseMatchesDense(q, 75);
}

TEST(SparseIdct, SingleAcBlock)
{
    QuantBlock q{};
    q[0] = -12;
    q[9] = 5; // one interior AC coefficient
    expectSparseMatchesDense(q, 75);
}

TEST(SparseIdct, FirstRowOnlyBlock)
{
    QuantBlock q{};
    q[0] = 20;
    q[1] = -7;
    q[3] = 4; // all energy in frequency row 0
    expectSparseMatchesDense(q, 60);
}

TEST(SparseIdct, FirstColumnOnlyBlock)
{
    QuantBlock q{};
    q[0] = 20;
    q[8] = -7;
    q[24] = 4; // all energy in frequency column 0
    expectSparseMatchesDense(q, 60);
}

TEST(SparseIdct, ZeroDcWithAcBlock)
{
    QuantBlock q{};
    q[10] = 3;
    q[17] = -2;
    expectSparseMatchesDense(q, 85);
}

TEST(SparseIdct, DenseBlockMatches)
{
    Rng rng(77);
    QuantBlock q;
    for (auto &v : q)
        v = static_cast<std::int32_t>(rng.uniformInt(-30, 30));
    q[63] = 1; // force a full-extent scan
    expectSparseMatchesDense(q, 90);
}

TEST(SparseIdct, RandomSparseBlocks)
{
    Rng rng(78);
    for (int trial = 0; trial < 200; ++trial) {
        QuantBlock q{};
        const int coeffs = static_cast<int>(rng.uniformInt(0, 8));
        for (int i = 0; i < coeffs; ++i)
            q[static_cast<std::size_t>(rng.uniformInt(0, 63))] =
                static_cast<std::int32_t>(rng.uniformInt(-100, 100));
        expectSparseMatchesDense(q, 75);
    }
}

int
maxChannelDiff(const Image &a, const Image &b)
{
    int max_diff = 0;
    for (int y = 0; y < a.height(); ++y) {
        for (int i = 0; i < a.width() * 3; ++i) {
            max_diff = std::max(
                max_diff, std::abs(static_cast<int>(a.row(y)[i]) -
                                   static_cast<int>(b.row(y)[i])));
        }
    }
    return max_diff;
}

/** Differential: the optimized decode must match the retained scalar
 *  reference within one count per channel on every subsample/quality
 *  combination. */
class FastDecodeDifferential
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(FastDecodeDifferential, MatchesReferenceWithinOne)
{
    const auto [quality, subsample] = GetParam();
    Rng rng(static_cast<std::uint64_t>(quality * 2 + (subsample ? 1 : 0)));
    const Image img = synthesize(rng, 211, 173, SynthOptions{0.5, 3});
    const std::string blob =
        encode(img, EncodeOptions{quality, subsample});
    const Image fast = decode(blob);
    const Image reference = decode(blob, DecodeOptions{.reference = true});
    ASSERT_TRUE(fast.sameSize(reference));
    EXPECT_LE(maxChannelDiff(fast, reference), 1)
        << "q" << quality << " subsample=" << subsample;
}

INSTANTIATE_TEST_SUITE_P(QualitySubsample, FastDecodeDifferential,
                         ::testing::Combine(::testing::Values(40, 90),
                                            ::testing::Bool()));

TEST(FastDecode, PaperWorkloadMatchesReference)
{
    // The paper-distribution decode workload the perf trajectory
    // tracks: 500x375 (ImageNet-average size) at q75, subsampled.
    Rng rng(2024);
    const Image img = synthesize(rng, 500, 375, SynthOptions{0.5, 4});
    const std::string blob = encode(img, EncodeOptions{75, true});
    const Image fast = decode(blob);
    const Image reference = decode(blob, DecodeOptions{.reference = true});
    EXPECT_LE(maxChannelDiff(fast, reference), 1);
}

TEST(FastDecode, ZeroCopyDecodeIsDeterministic)
{
    // The zero-copy reader consumes the caller's buffer in place; two
    // decodes of the same blob must agree bit for bit.
    Rng rng(55);
    const Image img = synthesize(rng, 96, 64);
    const std::string blob = encode(img);
    const Image first = decode(blob);
    const Image second = decode(blob);
    EXPECT_EQ(maxChannelDiff(first, second), 0);
}

double
psnr(const Image &a, const Image &b)
{
    double mse = 0.0;
    const auto n = static_cast<double>(a.byteSize());
    for (int y = 0; y < a.height(); ++y) {
        for (int i = 0; i < a.width() * 3; ++i) {
            const double d = static_cast<double>(a.row(y)[i]) - b.row(y)[i];
            mse += d * d;
        }
    }
    mse /= n;
    return mse == 0.0 ? 99.0 : 10.0 * std::log10(255.0 * 255.0 / mse);
}

TEST(Codec, RoundTripHighQualityIsFaithful)
{
    Rng rng(11);
    Image img = synthesize(rng, 64, 48, SynthOptions{0.3, 2});
    const std::string encoded = encode(img, EncodeOptions{95, false});
    Image decoded = decode(encoded);
    ASSERT_TRUE(decoded.sameSize(img));
    EXPECT_GT(psnr(img, decoded), 30.0);
}

TEST(Codec, SubsampledRoundTripStillReasonable)
{
    Rng rng(12);
    Image img = synthesize(rng, 64, 64, SynthOptions{0.3, 2});
    Image decoded = decode(encode(img, EncodeOptions{90, true}));
    EXPECT_GT(psnr(img, decoded), 26.0);
}

TEST(Codec, LowerQualityMeansSmallerOutput)
{
    Rng rng(13);
    Image img = synthesize(rng, 96, 96, SynthOptions{0.6, 3});
    const auto high = encode(img, EncodeOptions{95, true}).size();
    const auto mid = encode(img, EncodeOptions{60, true}).size();
    const auto low = encode(img, EncodeOptions{15, true}).size();
    EXPECT_GT(high, mid);
    EXPECT_GT(mid, low);
}

TEST(Codec, MoreDetailMeansLargerOutput)
{
    Rng rng1(14), rng2(14);
    Image flat = synthesize(rng1, 96, 96, SynthOptions{0.05, 0});
    Image busy = synthesize(rng2, 96, 96, SynthOptions{0.95, 6});
    EXPECT_GT(encode(busy).size(), encode(flat).size() * 2);
}

TEST(Codec, HeaderRoundTrip)
{
    Rng rng(15);
    Image img = synthesize(rng, 50, 34);
    const std::string encoded = encode(img, EncodeOptions{70, true});
    const LjpgHeader header = peekHeader(encoded);
    EXPECT_EQ(header.width, 50);
    EXPECT_EQ(header.height, 34);
    EXPECT_EQ(header.quality, 70);
    EXPECT_TRUE(header.subsampled);
}

TEST(Codec, OddDimensionsRoundTrip)
{
    Rng rng(16);
    Image img = synthesize(rng, 37, 23, SynthOptions{0.4, 1});
    Image decoded = decode(encode(img, EncodeOptions{85, true}));
    EXPECT_EQ(decoded.width(), 37);
    EXPECT_EQ(decoded.height(), 23);
    EXPECT_GT(psnr(img, decoded), 22.0);
}

TEST(Codec, RejectsGarbage)
{
    Result<Image> decoded = tryDecode("garbage data here");
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kCorruptData);
    // The fatal wrapper for trusted fixtures still aborts.
    EXPECT_DEATH(decode("garbage data here"), "");
}

TEST(Codec, RejectsTruncatedPayloadCleanly)
{
    Rng rng(31);
    Image img = synthesize(rng, 48, 48);
    const std::string encoded = encode(img);
    // Chop the entropy payload: the decoder must return a clear
    // error, never crash or emit a half-decoded image.
    Result<Image> decoded =
        tryDecode(encoded.substr(0, encoded.size() / 3));
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kCorruptData);
    EXPECT_NE(decoded.error().message.find("corrupt LJPG"),
              std::string::npos);
}

TEST(Codec, RejectsBitFlippedHeader)
{
    Rng rng(32);
    Image img = synthesize(rng, 32, 32);
    std::string encoded = encode(img);
    encoded[8] = static_cast<char>(200); // quality byte out of range
    Result<Image> decoded = tryDecode(encoded);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.error().message.find("corrupt LJPG header"),
              std::string::npos);
}

TEST(Codec, TinyImageRoundTrip)
{
    Image img(2, 2);
    img.pixel(0, 0)[0] = 200;
    img.pixel(1, 1)[2] = 100;
    Image decoded = decode(encode(img, EncodeOptions{90, false}));
    EXPECT_EQ(decoded.width(), 2);
    EXPECT_EQ(decoded.height(), 2);
}

/** Property sweep: round trip across sizes and qualities. */
class CodecRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>>
{
};

TEST_P(CodecRoundTrip, DecodeMatchesDimensionsAndQuality)
{
    const auto [width, height, quality, subsample] = GetParam();
    Rng rng(static_cast<std::uint64_t>(width * 1000 + height));
    Image img = synthesize(rng, width, height, SynthOptions{0.5, 2});
    Image decoded =
        decode(encode(img, EncodeOptions{quality, subsample}));
    ASSERT_EQ(decoded.width(), width);
    ASSERT_EQ(decoded.height(), height);
    const double floor = quality >= 80 ? 24.0 : 18.0;
    EXPECT_GT(psnr(img, decoded), floor)
        << width << "x" << height << " q" << quality;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CodecRoundTrip,
    ::testing::Combine(::testing::Values(8, 17, 64, 129),
                       ::testing::Values(8, 33, 64),
                       ::testing::Values(40, 85),
                       ::testing::Bool()));

} // namespace
} // namespace lotus::image::codec
