/**
 * @file
 * Tests for the virtual-time DataLoader simulation: protocol
 * integrity, determinism, and the regimes the paper characterizes
 * (preprocessing-bound vs GPU-bound, worker scaling, contention).
 */

#include <gtest/gtest.h>

#include "core/lotustrace/analysis.h"
#include "sim/loader_sim.h"

namespace lotus::sim {
namespace {

LoaderSimConfig
baseConfig()
{
    LoaderSimConfig config;
    config.model = ServiceModel::imageClassification();
    config.batch_size = 32;
    config.num_workers = 4;
    config.num_batches = 20;
    config.cores = 32;
    config.num_gpus = 1;
    config.seed = 3;
    return config;
}

TEST(LoaderSim, ProducesCompleteRecordSet)
{
    LoaderSim sim(baseConfig());
    const auto result = sim.run();
    EXPECT_GT(result.e2e_time, 0);

    core::lotustrace::TraceAnalysis analysis(result.records);
    ASSERT_EQ(analysis.batches().size(), 20u);
    for (const auto &batch : analysis.batches()) {
        EXPECT_TRUE(batch.has_preprocess);
        EXPECT_TRUE(batch.has_wait);
        EXPECT_TRUE(batch.has_consumed);
        EXPECT_TRUE(batch.has_gpu);
        EXPECT_GT(batch.preprocessTime(), 0);
    }
    // [T3]: 5 ops x 32 samples x 20 batches + 20 collates.
    std::size_t op_records = 0;
    for (const auto &record : result.records) {
        if (record.kind == trace::RecordKind::TransformOp)
            ++op_records;
    }
    EXPECT_EQ(op_records, 5u * 32u * 20u + 20u);
}

TEST(LoaderSim, DeterministicForSameSeed)
{
    LoaderSim a(baseConfig()), b(baseConfig());
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_EQ(ra.e2e_time, rb.e2e_time);
    ASSERT_EQ(ra.records.size(), rb.records.size());
    for (std::size_t i = 0; i < ra.records.size(); ++i) {
        EXPECT_EQ(ra.records[i].start, rb.records[i].start);
        EXPECT_EQ(ra.records[i].duration, rb.records[i].duration);
    }
}

TEST(LoaderSim, SeedChangesOutcome)
{
    auto config = baseConfig();
    LoaderSim a(config);
    config.seed = 4;
    LoaderSim b(config);
    EXPECT_NE(a.run().e2e_time, b.run().e2e_time);
}

TEST(LoaderSim, MoreWorkersReduceE2eWhenPreprocessingBound)
{
    auto config = baseConfig();
    config.gpu_time_per_sample = 10 * kMicrosecond; // fast GPU
    config.num_batches = 16;

    config.num_workers = 1;
    const auto one = LoaderSim(config).run();
    config.num_workers = 8;
    const auto eight = LoaderSim(config).run();
    EXPECT_LT(eight.e2e_time, one.e2e_time / 3);
}

TEST(LoaderSim, GpuBoundRegimeShowsLargeDelays)
{
    auto config = baseConfig();
    // Slow GPU, plentiful workers: batches pile up preprocessed.
    config.gpu_time_per_sample = 3 * kMillisecond;
    config.num_workers = 8;
    const auto result = LoaderSim(config).run();
    core::lotustrace::TraceAnalysis analysis(result.records);
    const TimeNs gpu_time = analysis.maxGpuTime();
    // Most batches wait longer than one GPU service (Fig. 2(b)/(c)).
    EXPECT_GT(analysis.fractionDelaysOver(gpu_time / 2), 0.5);
    // And the main process rarely waits (preprocessing is ahead).
    EXPECT_GT(analysis.outOfOrderFraction(), 0.0);
}

TEST(LoaderSim, PreprocessingBoundRegimeShowsLargeWaits)
{
    auto config = baseConfig();
    config.gpu_time_per_sample = 5 * kMicrosecond;
    config.num_workers = 1;
    const auto result = LoaderSim(config).run();
    core::lotustrace::TraceAnalysis analysis(result.records);
    // Main process waits dominate; delays are tiny (Fig. 2(a)).
    const auto waits = analysis.waitTimesMs();
    const auto delays = analysis.delayTimesMs();
    double wait_sum = 0.0, delay_sum = 0.0;
    for (const double w : waits)
        wait_sum += w;
    for (const double d : delays)
        delay_sum += d;
    EXPECT_GT(wait_sum, 10.0 * delay_sum);
}

TEST(LoaderSim, ContentionInflatesCpuTime)
{
    auto config = baseConfig();
    config.num_batches = 12;
    config.gpu_time_per_sample = 10 * kMicrosecond;
    config.num_workers = 4;
    // Zero the batch-level noise so the comparison isolates the
    // occupancy-driven inflation.
    config.model.batch_factor_cv = 0.0;
    config.apply_contention = false;
    const auto flat = LoaderSim(config).run();
    config.apply_contention = true;
    config.num_workers = 28; // high occupancy on 32 cores
    const auto contended = LoaderSim(config).run();
    EXPECT_GT(contended.total_cpu_seconds, flat.total_cpu_seconds * 1.05);
}

TEST(LoaderSim, OccupancyReflectsWorkerCount)
{
    auto config = baseConfig();
    config.gpu_time_per_sample = 10 * kMicrosecond;
    config.num_batches = 24;
    config.num_workers = 2;
    const auto low = LoaderSim(config).run();
    config.num_workers = 16;
    const auto high = LoaderSim(config).run();
    EXPECT_GT(high.avg_occupancy, low.avg_occupancy);
    EXPECT_LE(high.avg_occupancy, 1.0);
}

TEST(LoaderSim, LogOpsOffStillTracksBatches)
{
    auto config = baseConfig();
    config.log_ops = false;
    const auto result = LoaderSim(config).run();
    core::lotustrace::TraceAnalysis analysis(result.records);
    EXPECT_EQ(analysis.batches().size(), 20u);
    EXPECT_TRUE(analysis.opStats().empty());
}

TEST(LoaderSim, SentinelWaitsForOutOfOrderBatches)
{
    auto config = baseConfig();
    config.model = ServiceModel::imageSegmentation(); // high variance
    config.batch_size = 2;
    config.num_workers = 8;
    config.num_batches = 40;
    config.gpu_time_per_sample = 100 * kMillisecond; // gpu-bound
    const auto result = LoaderSim(config).run();
    int sentinels = 0;
    for (const auto &record : result.records) {
        if (record.kind == trace::RecordKind::BatchWait &&
            record.duration <= trace::kOutOfOrderSentinel)
            ++sentinels;
    }
    EXPECT_GT(sentinels, 5);
}

TEST(LoaderSim, PerWorkerQueueNeverReorders)
{
    auto config = baseConfig();
    config.model = ServiceModel::imageSegmentation(); // high variance
    config.batch_size = 2;
    config.num_workers = 8;
    config.num_batches = 40;
    config.gpu_time_per_sample = 100 * kMillisecond;
    config.queue_policy = DataQueuePolicy::PerWorker;
    const auto result = LoaderSim(config).run();

    core::lotustrace::TraceAnalysis analysis(result.records);
    ASSERT_EQ(analysis.batches().size(), 40u);
    // Same coverage as the shared topology...
    for (const auto &batch : analysis.batches()) {
        EXPECT_TRUE(batch.has_preprocess);
        EXPECT_TRUE(batch.has_consumed);
    }
    // ...but no reorder-cache sentinels can exist: every wait record
    // is a genuine wait measured at the producer's queue.
    int sentinels_from_cache = 0;
    for (const auto &record : result.records) {
        if (record.kind == trace::RecordKind::BatchWait &&
            record.duration == trace::kOutOfOrderSentinel)
            ++sentinels_from_cache;
    }
    EXPECT_EQ(sentinels_from_cache, 0);
}

TEST(LoaderSim, QueuePoliciesAgreeOnTotalWork)
{
    auto config = baseConfig();
    config.gpu_time_per_sample = 10 * kMicrosecond;
    config.queue_policy = DataQueuePolicy::Shared;
    const auto shared = LoaderSim(config).run();
    config.queue_policy = DataQueuePolicy::PerWorker;
    const auto per_worker = LoaderSim(config).run();
    // Identical seeds, identical service draws: worker CPU time is
    // the same; only the return topology differs.
    EXPECT_NEAR(shared.total_cpu_seconds, per_worker.total_cpu_seconds,
                shared.total_cpu_seconds * 0.02);
}

} // namespace
} // namespace lotus::sim
