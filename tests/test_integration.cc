/**
 * @file
 * End-to-end integration tests: the full Lotus workflow over a real
 * (small) image-classification training epoch — LotusTrace capture,
 * data-flow analysis, Chrome visualization, LotusMap mapping, and
 * hardware-counter attribution per operation.
 */

#include <gtest/gtest.h>

#include "common/files.h"
#include "core/lotusmap/isolation.h"
#include "core/lotusmap/mapper.h"
#include "core/lotusmap/splitter.h"
#include "core/lotustrace/analysis.h"
#include "core/lotustrace/visualize.h"
#include "hwcount/collection.h"
#include "hwcount/cost_model.h"
#include "image/codec/codec.h"
#include "image/resample.h"
#include "image/geometry.h"
#include "image/synth.h"
#include "pipeline/transforms/vision.h"
#include "sim/training_loop.h"
#include "tensor/ops.h"
#include "workloads/pipelines.h"
#include "workloads/synthetic.h"

namespace lotus {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        hwcount::KernelRegistry::instance().reset();
        hwcount::collection::reset();
    }

    void TearDown() override { SetUp(); }
};

TEST_F(IntegrationTest, InstrumentedEpochYieldsFullLotusView)
{
    // --- Build a small IC workload and run one instrumented epoch.
    workloads::ImageNetConfig data_config;
    data_config.num_images = 16;
    data_config.median_width = 64;
    auto store = workloads::buildImageNetStore(data_config);
    auto workload = workloads::makeImageClassification(store, 32);

    trace::TraceLogger logger;
    dataflow::DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);

    sim::GpuConfig gpu_config;
    gpu_config.time_per_sample = 200 * kMicrosecond;
    gpu_config.logger = &logger;
    sim::GpuModel gpu(gpu_config);
    sim::TrainingLoop trainer(loader, gpu);
    const auto stats = trainer.runEpoch();
    EXPECT_EQ(stats.batches, 4);
    EXPECT_EQ(stats.samples, 16);
    EXPECT_GT(stats.wall_time, 0);

    // --- LotusTrace analysis over the records.
    core::lotustrace::TraceAnalysis analysis(logger.records());
    ASSERT_EQ(analysis.batches().size(), 4u);
    for (const auto &batch : analysis.batches()) {
        EXPECT_TRUE(batch.has_preprocess);
        EXPECT_TRUE(batch.has_wait);
        EXPECT_TRUE(batch.has_consumed);
        EXPECT_TRUE(batch.has_gpu);
    }
    const auto op_stats = analysis.opStats();
    // Loader + 4 transforms + Collate.
    ASSERT_EQ(op_stats.size(), 6u);
    EXPECT_EQ(op_stats[0].name, "Loader");
    for (const auto &op : op_stats)
        EXPECT_GT(op.summary_ms.mean, 0.0) << op.name;

    // --- Visualization is well-formed and complete.
    const std::string json =
        core::lotustrace::toChromeJson(logger.records());
    EXPECT_NE(json.find("SBatchPreprocessed_3"), std::string::npos);
    EXPECT_NE(json.find("SGpuCompute_0"), std::string::npos);

    // --- Hardware view: the registry accumulated real kernel work.
    const auto snapshot = hwcount::KernelRegistry::instance().snapshot();
    const auto hot = snapshot.hotKernels();
    EXPECT_GT(hot.size(), 10u);
    const auto &decode_accum = snapshot.aggregate[static_cast<std::size_t>(
        hwcount::KernelId::DecodeMcu)];
    EXPECT_GT(decode_accum.calls, 0u);
    EXPECT_GT(decode_accum.stats.items, 0u);
    // Training-loop kernels unrelated to preprocessing also appear —
    // the clutter LotusMap exists to filter.
    EXPECT_GT(snapshot
                  .aggregate[static_cast<std::size_t>(
                      hwcount::KernelId::AdamStep)]
                  .calls,
              0u);
}

TEST_F(IntegrationTest, FullLotusMapAttributionWorkflow)
{
    // Shared sample content for the mapping phase.
    Rng rng(7);
    const image::Image img = image::synthesize(rng, 192, 192);
    const std::string blob = image::codec::encode(img);

    // --- Step 1 (paper §IV-B): per-op isolation profiling.
    core::lotusmap::IsolationConfig iso;
    iso.runs = 6;
    iso.warmup_runs = 1;
    iso.sleep_gap = 200 * kMicrosecond;
    iso.sampling.interval = 40 * kMicrosecond;
    iso.sampling.seed = 11;
    core::lotusmap::IsolationRunner runner(iso);

    core::lotusmap::LotusMapper mapper;
    mapper.addProfile(
        runner.profileOp("Loader", [&] { image::codec::decode(blob); }));
    mapper.addProfile(runner.profileOp("RandomResizedCrop", [&] {
        const auto cropped =
            image::crop(img, image::Rect{10, 10, 150, 150});
        image::resize(cropped, 64, 64);
    }));
    mapper.addProfile(runner.profileOp("ToTensor", [&] {
        const auto hwc = img.toTensorHwc();
        const auto chw = tensor::hwcToChw(hwc);
        tensor::castU8ToF32(chw);
    }));

    ASSERT_EQ(mapper.mappings().size(), 3u);
    for (const auto &mapping : mapper.mappings())
        EXPECT_FALSE(mapping.kernels.empty()) << mapping.op;

    // --- Step 2: an "end-to-end VTune profile": run the ops as a
    // pipeline and convert aggregate kernel work into counters.
    auto &registry = hwcount::KernelRegistry::instance();
    registry.reset();
    std::map<std::string, double> op_seconds;
    for (int i = 0; i < 3; ++i) {
        const auto t0 = SteadyClock::instance().now();
        image::codec::decode(blob);
        const auto t1 = SteadyClock::instance().now();
        const auto cropped =
            image::crop(img, image::Rect{10, 10, 150, 150});
        image::resize(cropped, 64, 64);
        const auto t2 = SteadyClock::instance().now();
        const auto hwc = img.toTensorHwc();
        const auto chw = tensor::hwcToChw(hwc);
        tensor::castU8ToF32(chw);
        const auto t3 = SteadyClock::instance().now();
        op_seconds["Loader"] += toSec(t1 - t0);
        op_seconds["RandomResizedCrop"] += toSec(t2 - t1);
        op_seconds["ToTensor"] += toSec(t3 - t2);
    }
    hwcount::SimulatedPmu pmu;
    const auto per_kernel =
        pmu.countersForSnapshot(registry.snapshot(), 0.2);

    // --- Step 3: split counters across ops by LotusTrace weights.
    const auto attribution =
        core::lotusmap::splitCounters(mapper, per_kernel, op_seconds);
    ASSERT_EQ(attribution.per_op.size(), 3u);
    const auto &loader = attribution.per_op.at("Loader");
    const auto &crop = attribution.per_op.at("RandomResizedCrop");
    EXPECT_GT(loader.cycles, 0u);
    EXPECT_GT(crop.cycles, 0u);
    // Decode dominates this pipeline's cycles.
    EXPECT_GT(loader.cycles, crop.cycles);

    // Conservation: nothing vanishes in the split (within rounding).
    hwcount::CounterSet total_in;
    for (const auto &counters : per_kernel)
        total_in += counters;
    hwcount::CounterSet total_out = attribution.unattributed;
    for (const auto &[op, counters] : attribution.per_op)
        total_out += counters;
    EXPECT_NEAR(static_cast<double>(total_out.cycles),
                static_cast<double>(total_in.cycles),
                static_cast<double>(total_in.cycles) * 0.001 + 10);
}

TEST_F(IntegrationTest, TraceLogFileRoundTripsThroughAnalysis)
{
    workloads::ImageNetConfig data_config;
    data_config.num_images = 6;
    data_config.median_width = 48;
    auto workload = workloads::makeImageClassification(
        workloads::buildImageNetStore(data_config), 24);
    trace::TraceLogger logger;
    dataflow::DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 1;
    options.logger = &logger;
    dataflow::DataLoader loader(workload.dataset, workload.collate,
                                options);
    while (loader.next().has_value()) {
    }

    TempDir dir("lotus-int");
    const std::string path = dir.file("epoch.lotustrace");
    logger.writeTo(path);
    const auto loaded = trace::TraceLogger::readFrom(path);
    core::lotustrace::TraceAnalysis from_file(loaded);
    core::lotustrace::TraceAnalysis from_memory(logger.records());
    EXPECT_EQ(from_file.batches().size(), from_memory.batches().size());
    EXPECT_EQ(from_file.opStats().size(), from_memory.opStats().size());
}

} // namespace
} // namespace lotus
