/**
 * @file
 * Unit tests for trace records, the logger sink, and Chrome trace
 * output.
 */

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/files.h"
#include "trace/chrome_trace.h"
#include "trace/logger.h"
#include "trace/record.h"

namespace lotus::trace {
namespace {

TEST(Record, LineRoundTrip)
{
    TraceRecord record;
    record.kind = RecordKind::TransformOp;
    record.batch_id = 42;
    record.pid = 7;
    record.start = 123456789;
    record.duration = 1000;
    record.op_name = "RandomResizedCrop";
    record.sample_index = 99;
    const TraceRecord back = TraceRecord::fromLine(record.toLine());
    EXPECT_EQ(back.kind, record.kind);
    EXPECT_EQ(back.batch_id, record.batch_id);
    EXPECT_EQ(back.pid, record.pid);
    EXPECT_EQ(back.start, record.start);
    EXPECT_EQ(back.duration, record.duration);
    EXPECT_EQ(back.op_name, record.op_name);
    EXPECT_EQ(back.sample_index, record.sample_index);
}

TEST(Record, TextRoundTripMany)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 10; ++i) {
        TraceRecord record;
        record.kind = i % 2 == 0 ? RecordKind::BatchWait
                                 : RecordKind::BatchPreprocessed;
        record.batch_id = i;
        record.start = i * 100;
        record.duration = i;
        records.push_back(record);
    }
    const auto back = recordsFromText(recordsToText(records));
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(back[i].kind, records[i].kind);
        EXPECT_EQ(back[i].batch_id, records[i].batch_id);
    }
}

TEST(Record, KindNamesMatchPaperSpans)
{
    EXPECT_STREQ(recordKindName(RecordKind::BatchPreprocessed),
                 "SBatchPreprocessed");
    EXPECT_STREQ(recordKindName(RecordKind::BatchWait), "SBatchWait");
    EXPECT_STREQ(recordKindName(RecordKind::BatchConsumed),
                 "SBatchConsumed");
}

TEST(Record, IoEventLineRoundTrip)
{
    EXPECT_STREQ(recordKindName(RecordKind::IoEvent), "SIo");
    TraceRecord record;
    record.kind = RecordKind::IoEvent;
    record.batch_id = 3;
    record.pid = 12;
    record.start = 987654321;
    record.duration = 4200;
    record.op_name = "io:2048";
    record.sample_index = 17;
    const TraceRecord back = TraceRecord::fromLine(record.toLine());
    EXPECT_EQ(back.kind, RecordKind::IoEvent);
    EXPECT_EQ(back.batch_id, record.batch_id);
    EXPECT_EQ(back.pid, record.pid);
    EXPECT_EQ(back.start, record.start);
    EXPECT_EQ(back.duration, record.duration);
    EXPECT_EQ(back.op_name, "io:2048");
    EXPECT_EQ(back.sample_index, record.sample_index);
}

TEST(Record, MalformedLineFatal)
{
    EXPECT_DEATH(TraceRecord::fromLine("bogus"), "");
}

TEST(Logger, CollectsAndSorts)
{
    VirtualClock clock(0);
    TraceLogger logger(&clock);
    TraceRecord late;
    late.start = 100;
    TraceRecord early;
    early.start = 10;
    logger.log(late);
    logger.log(early);
    const auto records = logger.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].start, 10);
    EXPECT_EQ(logger.recordCount(), 2u);
    logger.reset();
    EXPECT_EQ(logger.recordCount(), 0u);
}

TEST(Logger, ThreadedLoggingLosesNothing)
{
    TraceLogger logger;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&logger, t] {
            for (int i = 0; i < 500; ++i) {
                TraceRecord record;
                record.batch_id = t * 1000 + i;
                record.start = i;
                logger.log(record);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(logger.recordCount(), 2000u);
}

TEST(Logger, FileRoundTrip)
{
    TempDir dir("lotus-log");
    TraceLogger logger;
    TraceRecord record;
    record.kind = RecordKind::BatchPreprocessed;
    record.batch_id = 3;
    record.duration = 500;
    logger.log(record);
    const std::string path = dir.file("trace.log");
    const auto bytes = logger.writeTo(path);
    EXPECT_GT(bytes, 0u);
    EXPECT_EQ(fileSize(path), bytes);
    const auto back = TraceLogger::readFrom(path);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].batch_id, 3);
}

TEST(Logger, ObserverSeesRecords)
{
    TraceLogger logger;
    int observed = 0;
    logger.setObserver([&](const TraceRecord &) { ++observed; });
    logger.log(TraceRecord{});
    logger.log(TraceRecord{});
    EXPECT_EQ(observed, 2);
    EXPECT_EQ(logger.recordCount(), 2u);
}

TEST(Logger, SetObserverAfterLoggingStartedIsFatal)
{
    TraceLogger logger;
    logger.log(TraceRecord{});
    EXPECT_EXIT(logger.setObserver([](const TraceRecord &) {}),
                ::testing::ExitedWithCode(1),
                "setObserver called after logging started");
}

TEST(Logger, ResetReArmsObserverInstallation)
{
    TraceLogger logger;
    logger.log(TraceRecord{});
    logger.reset();
    int observed = 0;
    logger.setObserver([&](const TraceRecord &) { ++observed; });
    logger.log(TraceRecord{});
    EXPECT_EQ(observed, 1);
}

TEST(Logger, DiscardModeKeepsNothingButObserves)
{
    TraceLogger logger;
    int observed = 0;
    logger.setObserver([&](const TraceRecord &) { ++observed; });
    logger.setStoreRecords(false);
    logger.log(TraceRecord{});
    EXPECT_EQ(observed, 1);
    EXPECT_EQ(logger.recordCount(), 0u);
}

TEST(Logger, SpanTimerMeasuresDuration)
{
    VirtualClock clock(1000);
    TraceLogger logger(&clock);
    SpanTimer span(&logger, RecordKind::BatchWait);
    span.record().batch_id = 5;
    clock.advance(250);
    span.finish();
    const auto records = logger.records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].start, 1000);
    EXPECT_EQ(records[0].duration, 250);
    EXPECT_EQ(records[0].batch_id, 5);
}

TEST(Logger, SpanTimerWithoutLoggerIsNoop)
{
    SpanTimer span(nullptr, RecordKind::BatchWait);
    span.finish(); // must not crash
}

TEST(ChromeTrace, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ChromeTrace, CompleteEventJson)
{
    ChromeEvent event;
    event.name = "SBatchPreprocessed_1";
    event.phase = 'X';
    event.ts_us = 1.5;
    event.dur_us = 2.0;
    event.pid = 10;
    event.tid = 10;
    const std::string json = event.toJson();
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2.000"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":10"), std::string::npos);
}

TEST(ChromeTrace, BuilderProducesValidSkeleton)
{
    ChromeTraceBuilder builder;
    builder.setProcessName(1, "main process");
    builder.addComplete("span", "cat", 1000, 500, 1, 1);
    builder.addFlow("flow", 1500, 2, 2, 2000, 1, 1);
    builder.addInstant("marker", 2500, 1, 1);
    const std::string json = builder.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(json.find("process_name"), std::string::npos);
}

TEST(ChromeTrace, SyntheticIdsAreNegativeAndUnique)
{
    ChromeTraceBuilder builder;
    builder.addComplete("a", "", 0, 1, 1, 1);
    builder.addComplete("b", "", 0, 1, 1, 1);
    builder.addFlow("f", 0, 1, 1, 1, 1, 1);
    std::set<std::int64_t> ids;
    for (const auto &event : builder.events()) {
        if (event.has_id) {
            EXPECT_LT(event.id, 0);
            ids.insert(event.id);
        }
    }
    // Two spans + one flow id (shared by its s/f pair).
    EXPECT_EQ(ids.size(), 3u);
}

TEST(ChromeTrace, WriteToFile)
{
    TempDir dir("lotus-chrome");
    ChromeTraceBuilder builder;
    builder.addComplete("x", "", 0, 1, 1, 1);
    const std::string path = dir.file("trace.json");
    const auto bytes = builder.writeTo(path);
    EXPECT_EQ(fileSize(path), bytes);
}

} // namespace
} // namespace lotus::trace
