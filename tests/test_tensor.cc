/**
 * @file
 * Unit tests for the tensor substrate: shapes, typed access, compute
 * kernels, serialization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace lotus::tensor {
namespace {

TEST(Tensor, ZeroInitializedWithShape)
{
    Tensor t(DType::F32, {2, 3, 4});
    EXPECT_EQ(t.numel(), 24);
    EXPECT_EQ(t.byteSize(), 96u);
    EXPECT_EQ(t.dim(0), 2);
    EXPECT_EQ(t.dim(-1), 4);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(t.data<float>()[i], 0.0f);
}

TEST(Tensor, EmptyTensor)
{
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.numel(), 0);
}

TEST(Tensor, CloneIsDeep)
{
    Tensor t(DType::U8, {4});
    t.data<std::uint8_t>()[0] = 42;
    Tensor copy = t.clone();
    copy.data<std::uint8_t>()[0] = 7;
    EXPECT_EQ(t.data<std::uint8_t>()[0], 42);
    EXPECT_EQ(copy.data<std::uint8_t>()[0], 7);
}

TEST(Tensor, ReshapePreservesData)
{
    Tensor t(DType::U8, {2, 6});
    t.data<std::uint8_t>()[5] = 9;
    Tensor r = std::move(t).reshaped({3, 4});
    EXPECT_EQ(r.dim(0), 3);
    EXPECT_EQ(r.data<std::uint8_t>()[5], 9);
}

TEST(Tensor, Description)
{
    Tensor t(DType::F32, {3, 224, 224});
    EXPECT_EQ(t.description(), "f32[3, 224, 224]");
}

TEST(Tensor, TypeCheckPanicsOnMismatch)
{
    Tensor t(DType::U8, {2});
    EXPECT_DEATH(t.data<float>(), "assertion failed");
}

TEST(Ops, CastU8ToF32Scales)
{
    Tensor t(DType::U8, {3});
    t.data<std::uint8_t>()[0] = 0;
    t.data<std::uint8_t>()[1] = 255;
    t.data<std::uint8_t>()[2] = 51;
    Tensor f = castU8ToF32(t);
    EXPECT_FLOAT_EQ(f.data<float>()[0], 0.0f);
    EXPECT_FLOAT_EQ(f.data<float>()[1], 1.0f);
    EXPECT_NEAR(f.data<float>()[2], 0.2f, 1e-6);
}

TEST(Ops, CastRoundTripIdentityForSmallIntegers)
{
    Tensor t(DType::U8, {256});
    for (int i = 0; i < 256; ++i)
        t.data<std::uint8_t>()[i] = static_cast<std::uint8_t>(i);
    Tensor f = castU8ToF32(t, 1.0f);
    Tensor back = castF32ToU8(f, 1.0f);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(back.data<std::uint8_t>()[i], i);
}

TEST(Ops, CastF32ToU8Clamps)
{
    Tensor t(DType::F32, {2});
    t.data<float>()[0] = -5.0f;
    t.data<float>()[1] = 300.0f;
    Tensor u = castF32ToU8(t);
    EXPECT_EQ(u.data<std::uint8_t>()[0], 0);
    EXPECT_EQ(u.data<std::uint8_t>()[1], 255);
}

TEST(Ops, HwcToChwPermutes)
{
    Tensor hwc(DType::U8, {2, 2, 3});
    // pixel (y, x) channel c value: y*100 + x*10 + c
    for (int y = 0; y < 2; ++y) {
        for (int x = 0; x < 2; ++x) {
            for (int c = 0; c < 3; ++c) {
                hwc.data<std::uint8_t>()[(y * 2 + x) * 3 + c] =
                    static_cast<std::uint8_t>(y * 100 + x * 10 + c);
            }
        }
    }
    Tensor chw = hwcToChw(hwc);
    ASSERT_EQ(chw.shape(), (std::vector<std::int64_t>{3, 2, 2}));
    for (int c = 0; c < 3; ++c) {
        for (int y = 0; y < 2; ++y) {
            for (int x = 0; x < 2; ++x) {
                EXPECT_EQ(chw.data<std::uint8_t>()[(c * 2 + y) * 2 + x],
                          y * 100 + x * 10 + c);
            }
        }
    }
}

TEST(Ops, NormalizeChannels)
{
    Tensor t(DType::F32, {2, 2});
    t.data<float>()[0] = 1.0f;
    t.data<float>()[1] = 3.0f;
    t.data<float>()[2] = 10.0f;
    t.data<float>()[3] = 20.0f;
    normalizeChannels(t, {2.0f, 15.0f}, {2.0f, 5.0f});
    EXPECT_FLOAT_EQ(t.data<float>()[0], -0.5f);
    EXPECT_FLOAT_EQ(t.data<float>()[1], 0.5f);
    EXPECT_FLOAT_EQ(t.data<float>()[2], -1.0f);
    EXPECT_FLOAT_EQ(t.data<float>()[3], 1.0f);
}

TEST(Ops, ScaleBrightness)
{
    Tensor t(DType::F32, {3});
    for (int i = 0; i < 3; ++i)
        t.data<float>()[i] = static_cast<float>(i + 1);
    scaleBrightness(t, 2.0f);
    EXPECT_FLOAT_EQ(t.data<float>()[2], 6.0f);
}

TEST(Ops, GaussianNoiseChangesValuesWithRequestedSpread)
{
    Tensor t(DType::F32, {10000});
    Rng rng(3);
    addGaussianNoise(t, rng, 0.0f, 2.0f);
    double sum = 0.0, sum_sq = 0.0;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
        sum += t.data<float>()[i];
        sum_sq += static_cast<double>(t.data<float>()[i]) *
                  t.data<float>()[i];
    }
    const double mean = sum / static_cast<double>(t.numel());
    const double stddev =
        std::sqrt(sum_sq / static_cast<double>(t.numel()) - mean * mean);
    EXPECT_NEAR(mean, 0.0, 0.1);
    EXPECT_NEAR(stddev, 2.0, 0.1);
}

TEST(Ops, FlipAxisReversesMiddleAxis)
{
    Tensor t(DType::U8, {2, 3, 2});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.data<std::uint8_t>()[i] = static_cast<std::uint8_t>(i);
    Tensor f = flipAxis(t, 1);
    // element (o, m, i) -> (o, 2-m, i)
    for (int o = 0; o < 2; ++o) {
        for (int m = 0; m < 3; ++m) {
            for (int i = 0; i < 2; ++i) {
                EXPECT_EQ(f.data<std::uint8_t>()[(o * 3 + m) * 2 + i],
                          (o * 3 + (2 - m)) * 2 + i);
            }
        }
    }
}

TEST(Ops, FlipAxisTwiceIsIdentity)
{
    Rng rng(8);
    Tensor t(DType::F32, {3, 4, 5});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.data<float>()[i] = static_cast<float>(rng.nextDouble());
    for (int axis = 0; axis < 3; ++axis) {
        Tensor once = flipAxis(t, axis);
        Tensor twice = flipAxis(once, axis);
        for (std::int64_t i = 0; i < t.numel(); ++i)
            EXPECT_EQ(twice.data<float>()[i], t.data<float>()[i]);
    }
}

TEST(Ops, CropWindowExtractsSubtensor)
{
    Tensor t(DType::U8, {4, 4});
    for (std::int64_t i = 0; i < 16; ++i)
        t.data<std::uint8_t>()[i] = static_cast<std::uint8_t>(i);
    Tensor c = cropWindow(t, {1, 2}, {2, 2});
    ASSERT_EQ(c.shape(), (std::vector<std::int64_t>{2, 2}));
    EXPECT_EQ(c.data<std::uint8_t>()[0], 6);  // (1, 2)
    EXPECT_EQ(c.data<std::uint8_t>()[1], 7);  // (1, 3)
    EXPECT_EQ(c.data<std::uint8_t>()[2], 10); // (2, 2)
    EXPECT_EQ(c.data<std::uint8_t>()[3], 11); // (2, 3)
}

TEST(Ops, CropWindowOutOfBoundsPanics)
{
    Tensor t(DType::U8, {4, 4});
    EXPECT_DEATH(cropWindow(t, {3, 0}, {2, 4}), "crop out of bounds");
}

TEST(Ops, ForegroundSearchFindsBrightVoxels)
{
    Tensor t(DType::F32, {1, 3, 3});
    t.data<float>()[4] = 250.0f;
    t.data<float>()[8] = 251.0f;
    const auto hits = foregroundSearch(t, 200.0f, 100);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0], 4);
    EXPECT_EQ(hits[1], 8);
}

TEST(Ops, ForegroundSearchWorksOnU8)
{
    Tensor t(DType::U8, {1, 4});
    t.data<std::uint8_t>()[2] = 230;
    const auto hits = foregroundSearch(t, 200.0f, 100);
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], 2);
}

TEST(Ops, ForegroundSearchHonorsMaxResults)
{
    Tensor t(DType::F32, {1, 100});
    for (int i = 0; i < 100; ++i)
        t.data<float>()[i] = 300.0f;
    EXPECT_EQ(foregroundSearch(t, 200.0f, 5).size(), 5u);
}

TEST(Ops, StackAddsLeadingAxis)
{
    Tensor a(DType::F32, {2, 2});
    Tensor b(DType::F32, {2, 2});
    a.data<float>()[0] = 1.0f;
    b.data<float>()[3] = 2.0f;
    Tensor s = stack(std::vector<Tensor>{a.clone(), b.clone()});
    ASSERT_EQ(s.shape(), (std::vector<std::int64_t>{2, 2, 2}));
    EXPECT_FLOAT_EQ(s.data<float>()[0], 1.0f);
    EXPECT_FLOAT_EQ(s.data<float>()[7], 2.0f);
}

TEST(Ops, StackRequiresMatchingShapes)
{
    Tensor a(DType::F32, {2});
    Tensor b(DType::F32, {3});
    EXPECT_DEATH(stack(std::vector<Tensor>{a.clone(), b.clone()}),
                 "equal shapes");
}

TEST(Ops, PadToGrowsWithZeros)
{
    Tensor t(DType::U8, {2, 3});
    for (std::int64_t i = 0; i < 6; ++i)
        t.data<std::uint8_t>()[i] = static_cast<std::uint8_t>(i + 1);
    Tensor p = padTo(t, {3, 5});
    ASSERT_EQ(p.shape(), (std::vector<std::int64_t>{3, 5}));
    // Original values at the origin corner.
    EXPECT_EQ(p.data<std::uint8_t>()[0], 1);
    EXPECT_EQ(p.data<std::uint8_t>()[1 * 5 + 2], 6); // (1,2)
    // Padding is zero.
    EXPECT_EQ(p.data<std::uint8_t>()[0 * 5 + 3], 0);
    EXPECT_EQ(p.data<std::uint8_t>()[2 * 5 + 0], 0);
}

TEST(Ops, PadToSameShapeIsCopy)
{
    Tensor t(DType::F32, {2, 2});
    t.data<float>()[3] = 7.0f;
    Tensor p = padTo(t, {2, 2});
    EXPECT_FLOAT_EQ(p.data<float>()[3], 7.0f);
    p.data<float>()[3] = 1.0f;
    EXPECT_FLOAT_EQ(t.data<float>()[3], 7.0f); // deep copy
}

TEST(Ops, PadToRejectsShrinking)
{
    Tensor t(DType::U8, {4});
    EXPECT_DEATH(padTo(t, {2}), "pad target smaller");
}

TEST(Serialize, RoundTripF32)
{
    Rng rng(17);
    Tensor t(DType::F32, {2, 3, 4});
    for (std::int64_t i = 0; i < t.numel(); ++i)
        t.data<float>()[i] = static_cast<float>(rng.normal());
    const std::string bytes = toBytes(t);
    Tensor back = fromBytes(bytes);
    ASSERT_EQ(back.shape(), t.shape());
    ASSERT_EQ(back.dtype(), t.dtype());
    for (std::int64_t i = 0; i < t.numel(); ++i)
        EXPECT_EQ(back.data<float>()[i], t.data<float>()[i]);
}

TEST(Serialize, RoundTripU8)
{
    Tensor t(DType::U8, {5});
    for (int i = 0; i < 5; ++i)
        t.data<std::uint8_t>()[i] = static_cast<std::uint8_t>(50 + i);
    Tensor back = fromBytes(toBytes(t));
    EXPECT_EQ(back.data<std::uint8_t>()[4], 54);
}

TEST(Serialize, RejectsGarbage)
{
    EXPECT_DEATH(fromBytes("not a tensor"), "");
}

} // namespace
} // namespace lotus::tensor
