/**
 * @file
 * Decoded-sample cache suite: deterministic-prefix bookkeeping on
 * Compose, prefix fingerprints, the sharded CLOCK SampleCache
 * (budget, eviction, rejection, concurrent hammering, pooled warm
 * hits), disk materialization (round-trip, atomicity residue,
 * corruption recovery, directory claims), loader end-to-end warm
 * epochs (bit-identity, Loader-span collapse), and CacheEvent trace
 * records through record/visualize/analysis.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "cache/materialize.h"
#include "cache/sample_cache.h"
#include "common/files.h"
#include "common/rng.h"
#include "common/strings.h"
#include "core/lotustrace/analysis.h"
#include "core/lotustrace/visualize.h"
#include "dataflow/data_loader.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "memory/buffer_pool.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/image_folder.h"
#include "pipeline/store.h"
#include "pipeline/transforms/vision.h"
#include "trace/logger.h"

namespace lotus::cache {
namespace {

using pipeline::Compose;
using pipeline::PipelineContext;
using pipeline::Sample;

// --- Deterministic prefix on Compose ---------------------------------

std::unique_ptr<Compose>
icCompose(int crop = 32)
{
    // The paper's IC chain: stochastic first op => empty prefix.
    pipeline::RandomResizedCrop::Params params;
    params.size = crop;
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(
        std::make_unique<pipeline::RandomResizedCrop>(params));
    transforms.push_back(
        std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    transforms.push_back(std::make_unique<pipeline::Normalize>(
        std::vector<float>{0.485f, 0.456f, 0.406f},
        std::vector<float>{0.229f, 0.224f, 0.225f}));
    return std::make_unique<Compose>(std::move(transforms));
}

std::unique_ptr<Compose>
resizeFirstCompose(int size, bool with_flip)
{
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(
        std::make_unique<pipeline::Resize>(size, 0, /*exact=*/true));
    if (with_flip)
        transforms.push_back(
            std::make_unique<pipeline::RandomHorizontalFlip>(0.5));
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_unique<Compose>(std::move(transforms));
}

TEST(DeterministicPrefix, EndsAtFirstStochasticOp)
{
    EXPECT_EQ(icCompose()->deterministicPrefixLength(), 0u);
    // Resize, Flip, ToTensor: the prefix is Resize only — ToTensor is
    // deterministic but sits after a stochastic op.
    EXPECT_EQ(resizeFirstCompose(32, true)->deterministicPrefixLength(),
              1u);
    // Fully deterministic chain: whole pipeline is prefix.
    EXPECT_EQ(resizeFirstCompose(32, false)->deterministicPrefixLength(),
              2u);
}

TEST(DeterministicPrefix, FingerprintTracksPrefixConfigOnly)
{
    const auto a = resizeFirstCompose(32, true)->prefixFingerprint();
    const auto same = resizeFirstCompose(32, true)->prefixFingerprint();
    const auto other_size =
        resizeFirstCompose(64, true)->prefixFingerprint();
    EXPECT_EQ(a, same);
    EXPECT_NE(a, other_size) << "prefix config must change the key";
    // A longer prefix (same leading op) is a different computation.
    EXPECT_NE(a, resizeFirstCompose(32, false)->prefixFingerprint());
}

TEST(DeterministicPrefix, PrefixPlusSuffixMatchesFullApplication)
{
    Rng synth_rng(5);
    const image::Image source = image::synthesize(synth_rng, 48, 40);

    auto run = [&](bool split) {
        const auto compose = resizeFirstCompose(24, true);
        Sample sample;
        sample.image = source; // deep pooled copy
        Rng rng(1234);
        PipelineContext ctx;
        ctx.rng = &rng;
        if (split) {
            compose->applyPrefix(sample, ctx);
            compose->applySuffix(sample, ctx);
        } else {
            (*compose)(sample, ctx);
        }
        return sample;
    };
    const Sample whole = run(false);
    const Sample parts = run(true);
    ASSERT_EQ(whole.data.byteSize(), parts.data.byteSize());
    EXPECT_EQ(0, std::memcmp(whole.data.raw(), parts.data.raw(),
                             whole.data.byteSize()));
}

// --- SampleCache ------------------------------------------------------

Sample
stampedSample(std::int64_t index, std::int64_t floats = 256)
{
    Sample sample;
    sample.data = tensor::Tensor(tensor::DType::F32, {floats});
    float *out = sample.data.data<float>();
    for (std::int64_t i = 0; i < floats; ++i)
        out[i] = static_cast<float>(index * 1000 + i);
    sample.label = index;
    return sample;
}

bool
sampleMatches(const Sample &sample, std::int64_t index)
{
    if (sample.label != index)
        return false;
    const float *data = sample.data.data<float>();
    for (std::int64_t i = 0; i < sample.data.numel(); ++i) {
        if (data[i] != static_cast<float>(index * 1000 + i))
            return false;
    }
    return true;
}

CacheKey
keyFor(std::int64_t index)
{
    return CacheKey{/*dataset_id=*/1, /*prefix_fingerprint=*/42, index};
}

TEST(SampleCache, HitReturnsIsolatedDeepClone)
{
    CacheConfig config;
    config.budget_bytes = 1 << 20;
    config.shards = 2;
    SampleCache cache(config);
    PipelineContext ctx;

    cache.insert(keyFor(7), stampedSample(7), ctx);
    auto first = cache.lookup(keyFor(7), ctx);
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(sampleMatches(*first, 7));

    // Scribbling on the returned clone (as an in-place suffix
    // transform would) must not corrupt the cached master copy.
    first->data.data<float>()[0] = -1.0f;
    auto second = cache.lookup(keyFor(7), ctx);
    ASSERT_TRUE(second.has_value());
    EXPECT_TRUE(sampleMatches(*second, 7));

    // Different fingerprint or dataset id = different entry.
    CacheKey other = keyFor(7);
    other.prefix_fingerprint = 43;
    EXPECT_FALSE(cache.lookup(other, ctx).has_value());
    other = keyFor(7);
    other.dataset_id = 2;
    EXPECT_FALSE(cache.lookup(other, ctx).has_value());

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.inserts, 1u);
}

TEST(SampleCache, EvictsUnderBudgetAndNeverExceedsIt)
{
    const std::int64_t entry_bytes = static_cast<std::int64_t>(
        SampleCache::sampleBytes(stampedSample(0)));
    CacheConfig config;
    config.shards = 1; // one shard: the budget bound is exact
    config.budget_bytes = 4 * entry_bytes;
    SampleCache cache(config);
    PipelineContext ctx;

    for (std::int64_t i = 0; i < 32; ++i) {
        cache.insert(keyFor(i), stampedSample(i), ctx);
        EXPECT_LE(cache.stats().bytes, config.budget_bytes);
    }
    const auto stats = cache.stats();
    EXPECT_EQ(stats.inserts, 32u);
    EXPECT_EQ(stats.evictions, 28u);
    EXPECT_EQ(stats.bytes, 4 * entry_bytes);
}

TEST(SampleCache, ClockGivesReferencedEntriesASecondChance)
{
    const std::int64_t entry_bytes = static_cast<std::int64_t>(
        SampleCache::sampleBytes(stampedSample(0)));
    CacheConfig config;
    config.shards = 1;
    config.budget_bytes = 4 * entry_bytes;
    SampleCache cache(config);
    PipelineContext ctx;

    // Fill the shard (keys 0-3), then overflow once: the sweep clears
    // every reference bit and evicts under the wrapped hand, leaving
    // keys 1-3 unreferenced residents.
    for (std::int64_t i = 0; i <= 4; ++i)
        cache.insert(keyFor(i), stampedSample(i), ctx);
    ASSERT_EQ(cache.stats().evictions, 1u);

    // Touch key 1, then overflow again: the hand must pass over the
    // just-referenced key 1 (second chance) and evict an untouched
    // peer instead.
    ASSERT_TRUE(cache.lookup(keyFor(1), ctx).has_value());
    cache.insert(keyFor(5), stampedSample(5), ctx);
    EXPECT_TRUE(cache.lookup(keyFor(1), ctx).has_value())
        << "referenced entry was evicted ahead of unreferenced peers";
    EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(SampleCache, RejectsEntriesLargerThanAShard)
{
    CacheConfig config;
    config.shards = 4;
    config.budget_bytes = 4096; // 1 KiB per shard
    SampleCache cache(config);
    PipelineContext ctx;

    cache.insert(keyFor(1), stampedSample(1, /*floats=*/4096), ctx);
    EXPECT_FALSE(cache.lookup(keyFor(1), ctx).has_value());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.rejects, 1u);
    EXPECT_EQ(stats.inserts, 0u);
    EXPECT_EQ(stats.bytes, 0);
}

TEST(SampleCache, WarmHitsAllocateFromThePoolNotTheHeap)
{
    CacheConfig config;
    config.budget_bytes = 1 << 22;
    config.shards = 2;
    SampleCache cache(config);
    PipelineContext ctx;
    for (std::int64_t i = 0; i < 8; ++i)
        cache.insert(keyFor(i), stampedSample(i), ctx);

    // Warm the calling thread's freelist with one round of clones,
    // then a steady-state round must be all pool hits: zero misses
    // means zero heap allocations on the warm path.
    for (std::int64_t i = 0; i < 8; ++i)
        ASSERT_TRUE(cache.lookup(keyFor(i), ctx).has_value());
    const auto before = memory::BufferPool::instance().stats();
    for (int round = 0; round < 4; ++round) {
        for (std::int64_t i = 0; i < 8; ++i)
            ASSERT_TRUE(cache.lookup(keyFor(i), ctx).has_value());
    }
    const auto delta =
        memory::BufferPool::instance().stats() - before;
    EXPECT_EQ(delta.misses, 0u);
    EXPECT_GE(delta.hits, 32u);
}

TEST(SampleCache, ConcurrentHammerKeepsBudgetAndContentInvariants)
{
    // Multi-worker eviction hammer (also run under TSan): every
    // thread mixes lookups and inserts over a keyspace several times
    // the budget, so CLOCK hands, free lists and the index are
    // constantly churning in every shard.
    const std::int64_t entry_bytes = static_cast<std::int64_t>(
        SampleCache::sampleBytes(stampedSample(0)));
    CacheConfig config;
    config.shards = 4;
    config.budget_bytes = 8 * entry_bytes;
    SampleCache cache(config);

    constexpr int kThreads = 8;
    constexpr std::int64_t kKeys = 64;
    std::atomic<bool> corrupt{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            PipelineContext ctx;
            Rng rng(static_cast<std::uint64_t>(t) + 1);
            for (int iter = 0; iter < 2000; ++iter) {
                const std::int64_t index =
                    static_cast<std::int64_t>(rng.uniformInt(0, kKeys - 1));
                if (auto hit = cache.lookup(keyFor(index), ctx)) {
                    if (!sampleMatches(*hit, index))
                        corrupt.store(true);
                } else {
                    cache.insert(keyFor(index), stampedSample(index),
                                 ctx);
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    EXPECT_FALSE(corrupt.load()) << "a hit returned another key's bytes";
    const auto stats = cache.stats();
    EXPECT_LE(stats.bytes, config.budget_bytes);
    EXPECT_GE(stats.bytes, 0);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.evictions, 0u);
    // Conservation: every admitted byte was either evicted or is
    // still resident.
    EXPECT_EQ(static_cast<std::int64_t>(stats.inserts -
                                        stats.evictions) *
                  entry_bytes,
              stats.bytes);
}

// --- Materialization --------------------------------------------------

TEST(Materialize, SerializeDeserializeRoundTripsImageAndTensor)
{
    Rng rng(3);
    Sample with_image;
    with_image.image = image::synthesize(rng, 21, 13);
    with_image.label = 77;
    const std::string image_bytes = serializeSample(with_image, 9);
    auto back = deserializeSample(
        reinterpret_cast<const std::uint8_t *>(image_bytes.data()),
        image_bytes.size(), 9);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().label, 77);
    ASSERT_TRUE(back.value().hasImage());
    EXPECT_TRUE(back.value().image->sameSize(*with_image.image));
    EXPECT_EQ(0, std::memcmp(back.value().image->raw(),
                             with_image.image->raw(),
                             with_image.image->byteSize()));

    const Sample with_tensor = stampedSample(5);
    const std::string tensor_bytes = serializeSample(with_tensor, 9);
    auto tensor_back = deserializeSample(
        reinterpret_cast<const std::uint8_t *>(tensor_bytes.data()),
        tensor_bytes.size(), 9);
    ASSERT_TRUE(tensor_back.ok());
    EXPECT_TRUE(sampleMatches(tensor_back.value(), 5));
}

TEST(Materialize, RejectsCorruptionTruncationAndWrongFingerprint)
{
    const std::string bytes = serializeSample(stampedSample(1), 11);
    const auto *data =
        reinterpret_cast<const std::uint8_t *>(bytes.data());

    // Wrong fingerprint: a reconfigured pipeline must not consume it.
    EXPECT_FALSE(deserializeSample(data, bytes.size(), 12).ok());

    // Any single flipped byte must fail the checksum, and every
    // truncation point must fail bounds checks — never crash.
    for (const std::size_t at :
         {std::size_t{0}, std::size_t{8}, std::size_t{40},
          bytes.size() - 1}) {
        std::string mutated = bytes;
        mutated[at] = static_cast<char>(mutated[at] ^ 0x5A);
        auto result = deserializeSample(
            reinterpret_cast<const std::uint8_t *>(mutated.data()),
            mutated.size(), 11);
        ASSERT_FALSE(result.ok()) << "flipped byte " << at;
        EXPECT_EQ(result.error().code, ErrorCode::kCorruptData);
    }
    for (std::size_t keep = 0; keep < bytes.size();
         keep += bytes.size() / 17 + 1)
        EXPECT_FALSE(deserializeSample(data, keep, 11).ok())
            << "truncated to " << keep;
}

TEST(Materialize, StoreSpillsAtomicallyAndRecoversFromCorruption)
{
    TempDir dir("lotus_cache_test");
    MaterializeStore store(dir.path(), /*fingerprint=*/21);

    EXPECT_EQ(store.tryLoad(3).error().code, ErrorCode::kNotFound);
    ASSERT_TRUE(store.spill(3, stampedSample(3)));
    EXPECT_TRUE(store.contains(3));
    // Atomic publication: no tmp residue after a completed spill.
    namespace fs = std::filesystem;
    for (const auto &entry : fs::directory_iterator(dir.path()))
        EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
            << entry.path();

    auto loaded = store.tryLoad(3);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(sampleMatches(loaded.value(), 3));

    // Corrupt the file on disk: load must fail recoverably (stage
    // "cache") and self-heal by unlinking, so the next load is a
    // plain kNotFound miss that triggers re-decode + re-spill.
    std::string bytes = readFile(store.pathFor(3));
    bytes[bytes.size() / 2] ^= 0x40;
    writeFile(store.pathFor(3), bytes);
    auto corrupt = store.tryLoad(3);
    ASSERT_FALSE(corrupt.ok());
    EXPECT_EQ(corrupt.error().code, ErrorCode::kCorruptData);
    EXPECT_EQ(corrupt.error().stage, "cache");
    EXPECT_FALSE(store.contains(3));
    EXPECT_EQ(store.tryLoad(3).error().code, ErrorCode::kNotFound);
}

TEST(Materialize, DirectoryClaimReleasesOnDestruction)
{
    TempDir dir("lotus_cache_claim");
    {
        MaterializeStore first(dir.path(), 1);
    }
    // Releasing the claim makes the dir reusable...
    MaterializeStore second(dir.path(), 1);
    // ...but a concurrent second claim is a fatal config error.
    EXPECT_EXIT(MaterializeStore(dir.path(), 1),
                ::testing::ExitedWithCode(1), "already in use");
}

// --- Loader end-to-end ------------------------------------------------

std::shared_ptr<pipeline::InMemoryStore>
encodedStore(int count, int edge = 40)
{
    auto store = std::make_shared<pipeline::InMemoryStore>();
    Rng rng(77);
    for (int i = 0; i < count; ++i)
        store->add(
            image::codec::encode(image::synthesize(rng, edge, edge)));
    return store;
}

std::shared_ptr<pipeline::ImageFolderDataset>
icDataset(std::shared_ptr<const pipeline::BlobStore> store)
{
    return std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::shared_ptr<const Compose>(icCompose()),
        /*num_classes=*/10);
}

/** Payload bytes + labels for @p epochs consecutive epochs. */
std::vector<std::vector<std::uint8_t>>
epochContents(dataflow::DataLoader &loader, int epochs)
{
    std::vector<std::vector<std::uint8_t>> out;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        loader.startEpoch();
        std::vector<std::uint8_t> bytes;
        while (auto batch = loader.next()) {
            const std::uint8_t *raw = batch->data.raw();
            bytes.insert(bytes.end(), raw, raw + batch->data.byteSize());
            for (const std::int64_t label : batch->labels) {
                const auto *p =
                    reinterpret_cast<const std::uint8_t *>(&label);
                bytes.insert(bytes.end(), p, p + sizeof(label));
            }
        }
        out.push_back(std::move(bytes));
    }
    return out;
}

dataflow::DataLoaderOptions
cachedOptions(int workers, dataflow::CachePolicy policy,
              std::int64_t budget = 64 << 20)
{
    dataflow::DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = workers;
    options.shuffle = true;
    options.seed = 9;
    options.cache_policy = policy;
    if (policy != dataflow::CachePolicy::kNone)
        options.cache_budget_bytes = budget;
    return options;
}

TEST(CachedLoader, WarmEpochsAreBitIdenticalAndSkipTheLoader)
{
    constexpr int kSamples = 24;
    auto store = encodedStore(kSamples);
    auto dataset = icDataset(store);
    auto collate = std::make_shared<pipeline::StackCollate>();

    dataflow::DataLoader uncached(
        dataset, collate,
        cachedOptions(2, dataflow::CachePolicy::kNone));
    const auto expected = epochContents(uncached, 3);

    trace::TraceLogger logger;
    auto options = cachedOptions(2, dataflow::CachePolicy::kMemory);
    options.logger = &logger;
    dataflow::DataLoader cached(dataset, collate, options);
    const auto got = epochContents(cached, 3);
    EXPECT_EQ(got, expected);

    ASSERT_NE(cached.cache(), nullptr);
    const auto stats = cached.cache()->stats();
    EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kSamples));
    EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(2 * kSamples));
    EXPECT_EQ(stats.evictions, 0u);

    // [T3] Loader spans (store read + decode) collapse to cold-epoch
    // only; CacheEvents mark every warm hit in worker lanes.
    std::int64_t loader_spans = 0, cache_hits = 0;
    for (const auto &record : logger.records()) {
        if (record.kind == trace::RecordKind::TransformOp &&
            record.op_name == pipeline::ImageFolderDataset::kLoaderOpName)
            ++loader_spans;
        if (record.kind == trace::RecordKind::CacheEvent &&
            record.op_name == "cache:hit")
            ++cache_hits;
    }
    EXPECT_EQ(loader_spans, kSamples);
    EXPECT_EQ(cache_hits, 2 * kSamples);
}

TEST(CachedLoader, MaterializeSpillsOnceThenServesFromDiskAndRecovers)
{
    constexpr int kSamples = 16;
    TempDir dir("lotus_cache_mat");
    auto store = encodedStore(kSamples);
    auto dataset = icDataset(store);
    auto collate = std::make_shared<pipeline::StackCollate>();

    dataflow::DataLoader uncached(
        dataset, collate,
        cachedOptions(2, dataflow::CachePolicy::kNone));
    const auto expected = epochContents(uncached, 3);

    // A memory budget below one decoded sample: every admission is
    // rejected, so warm epochs exercise the disk path exclusively.
    auto options = cachedOptions(2, dataflow::CachePolicy::kMaterialize,
                                 /*budget=*/1024);
    options.cache_shards = 1;
    options.materialize_dir = dir.file("spills");
    dataflow::DataLoader cached(dataset, collate, options);

    auto epochs = epochContents(cached, 2);
    ASSERT_NE(cached.cache(), nullptr);
    auto stats = cached.cache()->stats();
    EXPECT_EQ(stats.disk_spills, static_cast<std::uint64_t>(kSamples));
    EXPECT_EQ(stats.disk_hits, static_cast<std::uint64_t>(kSamples));
    EXPECT_GT(stats.rejects, 0u);

    // Corrupt one spill mid-run: the loader must degrade to
    // re-decoding that sample, re-spill it, and stay bit-identical.
    const std::string victim =
        strFormat("%s/sample_0.lspl", options.materialize_dir.c_str());
    ASSERT_TRUE(fileExists(victim));
    std::string bytes = readFile(victim);
    bytes[bytes.size() / 3] ^= 0x11;
    writeFile(victim, bytes);

    epochs.push_back(epochContents(cached, 1)[0]);
    EXPECT_EQ(epochs, expected);
    stats = cached.cache()->stats();
    EXPECT_GE(stats.disk_corrupt, 1u);
    EXPECT_EQ(stats.disk_spills, static_cast<std::uint64_t>(kSamples) + 1)
        << "corrupt sample was not re-spilled";
    EXPECT_TRUE(fileExists(victim)) << "re-spill did not recreate the file";
}

// --- CacheEvent through the trace stack ------------------------------

TEST(CacheEventRecord, RoundTripsAndFlowsThroughVisualizeAndAnalysis)
{
    trace::TraceRecord record;
    record.kind = trace::RecordKind::CacheEvent;
    record.batch_id = 3;
    record.pid = 12;
    record.start = 1000;
    record.duration = 0;
    record.op_name = "cache:hit";
    record.sample_index = 9;

    const trace::TraceRecord back =
        trace::TraceRecord::fromLine(record.toLine());
    EXPECT_EQ(back.kind, trace::RecordKind::CacheEvent);
    EXPECT_EQ(back.op_name, "cache:hit");
    EXPECT_EQ(back.sample_index, 9);

    // Visualize: the event lands as an instant in a worker lane.
    std::vector<trace::TraceRecord> records;
    trace::TraceRecord batch;
    batch.kind = trace::RecordKind::BatchPreprocessed;
    batch.batch_id = 3;
    batch.pid = 12;
    batch.start = 500;
    batch.duration = 2000;
    records.push_back(batch);
    records.push_back(record);
    const std::string json = core::lotustrace::toChromeJson(records);
    EXPECT_NE(json.find("cache:hit"), std::string::npos);

    // Analysis: cache events don't perturb batch timelines.
    core::lotustrace::TraceAnalysis analysis(records);
    ASSERT_EQ(analysis.batches().size(), 1u);
    EXPECT_EQ(analysis.batches()[0].batch_id, 3);
}

} // namespace
} // namespace lotus::cache
