/**
 * @file
 * Fault-injection suite for the recoverable sample-path error model:
 * exhaustive codec corruption sweeps (every single-byte truncation,
 * seeded bit flips), the FaultyStore decorator, and the loader-level
 * ErrorPolicy behaviors (fail / skip / retry) with their metrics and
 * trace instrumentation.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/strings.h"
#include "dataflow/data_loader.h"
#include "dataflow/error_policy.h"
#include "dataflow/fetcher.h"
#include "dataflow/iterable_loader.h"
#include "image/codec/bitio.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "metrics/metrics.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/faulty_store.h"
#include "pipeline/image_folder.h"
#include "pipeline/iterable_dataset.h"
#include "pipeline/remote_store.h"
#include "pipeline/store.h"
#include "pipeline/transforms/vision.h"
#include "trace/logger.h"

namespace lotus {
namespace {

using dataflow::DataLoader;
using dataflow::DataLoaderOptions;
using dataflow::ErrorPolicy;
using dataflow::IterableDataLoader;
using dataflow::IterableLoaderOptions;
using dataflow::LoaderError;
using pipeline::FaultyStore;
using pipeline::FaultyStoreOptions;

std::string
encodedFixture(int width, int height, std::uint64_t seed = 21)
{
    Rng rng(seed);
    const image::Image img = image::synthesize(rng, width, height);
    return image::codec::encode(img,
                                image::codec::EncodeOptions{75, true});
}

/** tryDecode must return a value or an Error — the assertion here is
 *  really "the process is still alive and the Result is coherent". */
void
expectDecodeOrError(const std::string &blob)
{
    Result<image::Image> decoded = image::codec::tryDecode(blob);
    if (decoded.ok()) {
        EXPECT_GT(decoded.value().width(), 0);
        EXPECT_GT(decoded.value().height(), 0);
    } else {
        EXPECT_FALSE(decoded.error().message.empty());
    }
}

TEST(CorruptionSweep, EverySingleByteTruncationFailsCleanly)
{
    const std::string blob = encodedFixture(48, 32);
    ASSERT_GT(blob.size(), 10u);
    int errors = 0;
    for (std::size_t len = 0; len < blob.size(); ++len) {
        Result<image::Image> decoded =
            image::codec::tryDecode(blob.substr(0, len));
        if (!decoded.ok())
            ++errors;
        else
            EXPECT_EQ(decoded.value().width(), 48);
    }
    // Nearly every prefix is rejected; a handful of late truncations
    // may only lose padding bits and still decode.
    EXPECT_GT(errors, static_cast<int>(blob.size()) / 2);
}

TEST(CorruptionSweep, SeededBitFlipsNeverCrash)
{
    const std::string blob = encodedFixture(48, 32);
    Rng rng(4242);
    int errors = 0;
    for (int trial = 0; trial < 1500; ++trial) {
        std::string corrupt = blob;
        const auto pos =
            static_cast<std::size_t>(rng.nextBelow(corrupt.size()));
        corrupt[pos] = static_cast<char>(
            static_cast<unsigned char>(corrupt[pos]) ^
            (1u << rng.nextBelow(8)));
        Result<image::Image> decoded = image::codec::tryDecode(corrupt);
        if (!decoded.ok())
            ++errors;
        else
            expectDecodeOrError(corrupt);
    }
    // Payload flips frequently land in the entropy stream; the sweep
    // must exercise real error paths, not just survive.
    EXPECT_GT(errors, 100);
}

TEST(CorruptionSweep, SeededByteStormsNeverCrash)
{
    // Heavier corruption: several flipped bytes per trial, so decode
    // failures compound across planes and blocks.
    const std::string blob = encodedFixture(32, 24, 77);
    Rng rng(777);
    for (int trial = 0; trial < 300; ++trial) {
        std::string corrupt = blob;
        const int flips = 1 + static_cast<int>(rng.nextBelow(8));
        for (int i = 0; i < flips; ++i) {
            const auto pos =
                static_cast<std::size_t>(rng.nextBelow(corrupt.size()));
            corrupt[pos] =
                static_cast<char>(rng.nextBelow(256));
        }
        expectDecodeOrError(corrupt);
    }
}

/** Craft a structurally valid LJPG header followed by a chosen
 *  entropy payload. */
std::string
craftedBlob(int width, int height, const std::string &payload)
{
    std::string blob;
    blob.append("LJ01", 4);
    blob.push_back(static_cast<char>(width & 0xFF));
    blob.push_back(static_cast<char>((width >> 8) & 0xFF));
    blob.push_back(static_cast<char>(height & 0xFF));
    blob.push_back(static_cast<char>((height >> 8) & 0xFF));
    blob.push_back(75);               // quality
    blob.push_back(0);                // not subsampled
    blob += payload;
    return blob;
}

TEST(CorruptionSweep, OversizedExpGolombRunIsADecodeError)
{
    // Regression: a crafted stream whose first AC run claims ~2e9
    // zeros used to wrap the int cursor and index out of bounds; it
    // must now come back as a decode error.
    image::codec::BitWriter writer;
    writer.putSe(0);              // luma DC delta
    writer.putUe(2'000'000'000u); // absurd zero-run length
    writer.putSe(1);
    const std::string blob = craftedBlob(8, 8, writer.take());
    Result<image::Image> decoded = image::codec::tryDecode(blob);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kCorruptData);
}

TEST(CorruptionSweep, HugeHeaderDimensionsRejectedBeforeAllocation)
{
    // A flipped header byte can claim a 65535x65535 image from a tiny
    // blob; the max_pixels cap must reject it before any plane is
    // allocated.
    const std::string blob = craftedBlob(0xFFFF, 0xFFFF, "xx");
    Result<image::Image> decoded = image::codec::tryDecode(blob);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kCorruptData);
    EXPECT_NE(decoded.error().message.find("pixel"), std::string::npos);
}

TEST(FaultyStore, FaultMapIsDeterministicPerSeed)
{
    auto inner = std::make_shared<pipeline::InMemoryStore>();
    for (int i = 0; i < 200; ++i)
        inner->add(strFormat("blob-%03d-payload-bytes", i));

    FaultyStoreOptions options;
    options.seed = 7;
    options.truncate_fraction = 0.1;
    options.bitflip_fraction = 0.1;
    options.io_error_fraction = 0.1;
    FaultyStore first(inner, options);
    FaultyStore second(inner, options);

    EXPECT_GT(first.faultCount(), 0);
    EXPECT_LT(first.faultCount(), first.size());
    for (std::int64_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first.faultFor(i), second.faultFor(i)) << "index " << i;

    FaultyStoreOptions reseeded = options;
    reseeded.seed = 8;
    FaultyStore other(inner, reseeded);
    int differing = 0;
    for (std::int64_t i = 0; i < first.size(); ++i)
        differing += first.faultFor(i) != other.faultFor(i);
    EXPECT_GT(differing, 0);
}

TEST(FaultyStore, ServesEachFaultShapeDeterministically)
{
    auto inner = std::make_shared<pipeline::InMemoryStore>();
    for (int i = 0; i < 8; ++i)
        inner->add(strFormat("blob-%03d-payload-bytes", i));
    FaultyStore store(inner, FaultyStoreOptions{.seed = 3});
    store.inject(1, FaultyStore::Fault::kTruncate);
    store.inject(2, FaultyStore::Fault::kBitFlip);
    store.inject(3, FaultyStore::Fault::kIoError);

    // Unfaulted blobs pass through untouched.
    EXPECT_EQ(store.tryRead(0).value(), inner->read(0));

    const std::string truncated = store.tryRead(1).value();
    EXPECT_LT(truncated.size(), inner->read(1).size());
    EXPECT_EQ(truncated, inner->read(1).substr(0, truncated.size()));
    EXPECT_EQ(store.tryRead(1).value(), truncated); // same every read

    const std::string flipped = store.tryRead(2).value();
    const std::string original = inner->read(2);
    ASSERT_EQ(flipped.size(), original.size());
    int differing_bits = 0;
    for (std::size_t i = 0; i < flipped.size(); ++i) {
        const unsigned delta = static_cast<unsigned char>(flipped[i]) ^
                               static_cast<unsigned char>(original[i]);
        for (unsigned bit = 0; bit < 8; ++bit)
            differing_bits += (delta >> bit) & 1u;
    }
    EXPECT_EQ(differing_bits, 1);
    EXPECT_EQ(store.tryRead(2).value(), flipped);

    Result<std::string> failed = store.tryRead(3);
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.error().code, ErrorCode::kIoError);
    EXPECT_GE(store.faultsServed(), 4u);
    EXPECT_EQ(store.blobSize(1), inner->blobSize(1)); // metadata unfaulted
}

TEST(FaultyStore, TransientIoErrorsClearAfterCountdown)
{
    auto inner = std::make_shared<pipeline::InMemoryStore>();
    inner->add("only-blob-here");
    FaultyStoreOptions options;
    options.transient_failures = 2;
    FaultyStore store(inner, options);
    store.inject(0, FaultyStore::Fault::kIoError);

    EXPECT_FALSE(store.tryRead(0).ok());
    EXPECT_FALSE(store.tryRead(0).ok());
    // Third and later reads succeed: the transient fault cleared.
    EXPECT_EQ(store.tryRead(0).value(), "only-blob-here");
    EXPECT_EQ(store.tryRead(0).value(), "only-blob-here");
}

/** ImageFolder dataset over @p store with a ToTensor-only chain and
 *  labels equal to indices (num_classes = store size). */
std::shared_ptr<pipeline::ImageFolderDataset>
makeImageDataset(std::shared_ptr<const pipeline::BlobStore> store)
{
    std::vector<pipeline::TransformPtr> transforms;
    transforms.push_back(std::make_unique<pipeline::ToTensor>());
    return std::make_shared<pipeline::ImageFolderDataset>(
        std::move(store),
        std::make_shared<pipeline::Compose>(std::move(transforms)),
        /*num_classes=*/1 << 20);
}

std::shared_ptr<pipeline::InMemoryStore>
makeEncodedStore(int count)
{
    auto store = std::make_shared<pipeline::InMemoryStore>();
    Rng rng(99);
    for (int i = 0; i < count; ++i)
        store->add(
            image::codec::encode(image::synthesize(rng, 16, 16)));
    return store;
}

TEST(LoaderErrorPolicy, FailSurfacesBatchAndWorkerIdentity)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(12),
                                                FaultyStoreOptions{});
    faulty->inject(5, FaultyStore::Fault::kIoError);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 2;
    options.error_policy = ErrorPolicy::kFail;
    DataLoader loader(makeImageDataset(faulty), collate, options);

    std::int64_t delivered = 0;
    bool threw = false;
    try {
        while (loader.next().has_value())
            ++delivered;
    } catch (const LoaderError &e) {
        threw = true;
        EXPECT_EQ(e.batchId(), 2); // index 5 lives in batch {4, 5}
        EXPECT_GE(e.workerId(), 0);
        EXPECT_LT(e.workerId(), 2);
        EXPECT_EQ(e.error().code, ErrorCode::kIoError);
        EXPECT_EQ(e.error().stage, "store");
    }
    EXPECT_TRUE(threw);
    // Batches before the failing one deliver normally: the error
    // surfaces in batch order even if it arrived early.
    EXPECT_EQ(delivered, 2);

    // The loader is restartable after a failed epoch.
    loader.startEpoch();
    auto batch = loader.next();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->batch_id, 0);
}

TEST(LoaderErrorPolicy, SynchronousFailUsesSentinelWorkerId)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(12),
                                                FaultyStoreOptions{});
    faulty->inject(5, FaultyStore::Fault::kIoError);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 0;
    options.error_policy = ErrorPolicy::kFail;
    DataLoader loader(makeImageDataset(faulty), collate, options);

    std::int64_t delivered = 0;
    bool threw = false;
    try {
        while (loader.next().has_value())
            ++delivered;
    } catch (const LoaderError &e) {
        threw = true;
        EXPECT_EQ(e.batchId(), 2);
        EXPECT_EQ(e.workerId(), -1); // main process, no worker
    }
    EXPECT_TRUE(threw);
    EXPECT_EQ(delivered, 2);
}

TEST(LoaderErrorPolicy, SkipRefillsKeepCadenceAndCountDrops)
{
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    // 5% injected permanent I/O errors, evenly spaced so every refill
    // candidate (index + 1) is clean and the counter equals the
    // injected count exactly.
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(40),
                                                FaultyStoreOptions{});
    faulty->inject(0, FaultyStore::Fault::kIoError);
    faulty->inject(20, FaultyStore::Fault::kIoError);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    options.error_policy = ErrorPolicy::kSkip;
    DataLoader loader(makeImageDataset(faulty), collate, options);

    std::int64_t batches = 0;
    std::multiset<std::int64_t> labels;
    while (auto batch = loader.next()) {
        ++batches;
        EXPECT_EQ(batch->size(), 4); // cadence and shape intact
        for (const auto label : batch->labels)
            labels.insert(label);
    }
    EXPECT_EQ(batches, 10);
    EXPECT_EQ(labels.size(), 40u);
    // Bad samples dropped, their forward neighbors duplicated.
    EXPECT_EQ(labels.count(0), 0u);
    EXPECT_EQ(labels.count(1), 2u);
    EXPECT_EQ(labels.count(20), 0u);
    EXPECT_EQ(labels.count(21), 2u);

    EXPECT_EQ(registry
                  .counter(metrics::labeled(dataflow::kSampleErrorsMetric,
                                            "policy", "skip", "stage",
                                            "store"))
                  ->value(),
              2u);
    registry.reset();
}

TEST(LoaderErrorPolicy, SynchronousSkipCountsDecodeErrorsAndTraces)
{
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    // Blob 3 is not an LJPG stream at all: the error surfaces from
    // the decode stage rather than the store.
    auto clean = makeEncodedStore(8);
    auto swapped = std::make_shared<pipeline::InMemoryStore>();
    for (std::int64_t i = 0; i < 8; ++i)
        swapped->add(i == 3 ? "this is not an image" : clean->read(i));

    trace::TraceLogger logger;
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 0;
    options.logger = &logger;
    options.error_policy = ErrorPolicy::kSkip;
    DataLoader loader(makeImageDataset(swapped), collate, options);

    std::int64_t samples = 0;
    while (auto batch = loader.next())
        samples += batch->size();
    EXPECT_EQ(samples, 8);

    EXPECT_EQ(registry
                  .counter(metrics::labeled(dataflow::kSampleErrorsMetric,
                                            "policy", "skip", "stage",
                                            "decode"))
                  ->value(),
              1u);
    int error_events = 0;
    for (const auto &record : logger.records()) {
        if (record.kind == trace::RecordKind::ErrorEvent) {
            ++error_events;
            EXPECT_EQ(record.op_name, "error:decode");
            EXPECT_EQ(record.sample_index, 3);
        }
    }
    EXPECT_EQ(error_events, 1);
    registry.reset();
}

TEST(LoaderErrorPolicy, RetryClearsTransientStoreFaults)
{
    FaultyStoreOptions fault_options;
    fault_options.transient_failures = 2;
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(12),
                                                fault_options);
    faulty->inject(3, FaultyStore::Fault::kIoError);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 1;
    options.error_policy = ErrorPolicy::kRetry;
    options.max_retries = 2;
    DataLoader loader(makeImageDataset(faulty), collate, options);

    // Every sample delivered exactly once: the transient fault was
    // absorbed by retries, nothing skipped or duplicated.
    std::multiset<std::int64_t> labels;
    while (auto batch = loader.next()) {
        for (const auto label : batch->labels)
            labels.insert(label);
    }
    EXPECT_EQ(labels.size(), 12u);
    for (std::int64_t i = 0; i < 12; ++i)
        EXPECT_EQ(labels.count(i), 1u) << "label " << i;
}

TEST(LoaderErrorPolicy, RetryExhaustionFailsTheBatch)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(8),
                                                FaultyStoreOptions{});
    faulty->inject(2, FaultyStore::Fault::kIoError); // permanent
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 1;
    options.error_policy = ErrorPolicy::kRetry;
    options.max_retries = 1;
    DataLoader loader(makeImageDataset(faulty), collate, options);
    EXPECT_THROW(
        {
            while (loader.next().has_value()) {
            }
        },
        LoaderError);
}

TEST(IterableLoaderErrorPolicy, SkipDropsBadSamplesAndStreamsOn)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(10),
                                                FaultyStoreOptions{});
    faulty->inject(2, FaultyStore::Fault::kIoError);
    faulty->inject(7, FaultyStore::Fault::kIoError);
    auto dataset = std::make_shared<pipeline::ShardedIterable>(
        makeImageDataset(faulty));
    auto collate = std::make_shared<pipeline::StackCollate>();
    IterableLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 2;
    options.error_policy = ErrorPolicy::kSkip;
    IterableDataLoader loader(dataset, collate, options);

    std::multiset<std::int64_t> labels;
    while (auto batch = loader.next()) {
        for (const auto label : batch->labels)
            labels.insert(label);
    }
    // Streams cannot refill, so the bad samples are simply gone.
    EXPECT_EQ(labels.size(), 8u);
    EXPECT_EQ(labels.count(2), 0u);
    EXPECT_EQ(labels.count(7), 0u);
}

TEST(IterableLoaderErrorPolicy, FailRaisesLoaderErrorWithWorker)
{
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(10),
                                                FaultyStoreOptions{});
    faulty->inject(4, FaultyStore::Fault::kIoError);
    auto dataset = std::make_shared<pipeline::ShardedIterable>(
        makeImageDataset(faulty));
    auto collate = std::make_shared<pipeline::StackCollate>();
    IterableLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 2;
    options.error_policy = ErrorPolicy::kFail;
    IterableDataLoader loader(dataset, collate, options);

    bool threw = false;
    try {
        while (loader.next().has_value()) {
        }
    } catch (const LoaderError &e) {
        threw = true;
        EXPECT_GE(e.workerId(), 0);
        EXPECT_LT(e.workerId(), 2);
        EXPECT_EQ(e.error().code, ErrorCode::kIoError);
    }
    EXPECT_TRUE(threw);

    // Restartable: a fresh epoch streams again (and fails again on
    // the same permanent fault, proving determinism).
    loader.startEpoch();
    EXPECT_THROW(
        {
            while (loader.next().has_value()) {
            }
        },
        LoaderError);
}

TEST(LoaderErrorPolicy, FullyCorruptStoreExhaustsSkipRefills)
{
    // Every blob fails: kSkip's bounded refill walk must give up and
    // surface an error instead of spinning forever.
    auto faulty = std::make_shared<FaultyStore>(makeEncodedStore(6),
                                                FaultyStoreOptions{});
    for (std::int64_t i = 0; i < 6; ++i)
        faulty->inject(i, FaultyStore::Fault::kIoError);
    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 1;
    options.error_policy = ErrorPolicy::kSkip;
    options.max_refill_attempts = 4;
    DataLoader loader(makeImageDataset(faulty), collate, options);
    EXPECT_THROW(
        {
            while (loader.next().has_value()) {
            }
        },
        LoaderError);
}

// ---------------------------------------------------------------------------
// Deadline timeouts: the RemoteStore's modeled deadline maps misses to
// ErrorCode::kTimeout, a *transient* error kind, and the FaultyStore
// decorator passes it through untouched — the two layers compose.

TEST(TimeoutFaults, DeadlineMissThroughFaultLayerIsRetryableTimeout)
{
    pipeline::RemoteStoreOptions remote_options;
    remote_options.rtt = 5 * kMillisecond;
    remote_options.bytes_per_ns = 0.0;
    remote_options.deadline = kMillisecond; // every request misses
    auto remote = std::make_shared<pipeline::RemoteStore>(
        makeEncodedStore(4), remote_options);
    auto faulty =
        std::make_shared<FaultyStore>(remote, FaultyStoreOptions{});

    Result<std::string> blob = faulty->tryRead(0);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code, ErrorCode::kTimeout);
    EXPECT_TRUE(errorIsTransient(blob.error().code));
    EXPECT_STREQ(errorCodeName(blob.error().code), "timeout");

    // The batched path fails every slot of the run the same way, and
    // none of it is the fault layer's doing.
    std::vector<pipeline::BlobReadRequest> requests;
    for (std::int64_t i = 0; i < 3; ++i)
        requests.push_back(pipeline::BlobReadRequest{i, -1, -1});
    auto blobs = faulty->tryReadMany(requests);
    ASSERT_EQ(blobs.size(), 3u);
    for (const auto &result : blobs) {
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().code, ErrorCode::kTimeout);
    }
    EXPECT_EQ(faulty->faultsServed(), 0u);
    EXPECT_EQ(remote->roundTrips(), 0u);
    EXPECT_EQ(remote->timeouts(), 4u);
}

TEST(TimeoutFaults, RetryAbsorbsTransientFaultsOverTheRemoteModel)
{
    // Generous deadline: the remote model adds latency but never
    // fires, while the fault layer injects a clearing I/O error. The
    // kRetry policy re-reads through both layers and recovers.
    pipeline::RemoteStoreOptions remote_options;
    remote_options.rtt = 100 * kMicrosecond;
    remote_options.bytes_per_ns = 0.0;
    remote_options.deadline = 500 * kMillisecond;
    auto remote = std::make_shared<pipeline::RemoteStore>(
        makeEncodedStore(8), remote_options);
    FaultyStoreOptions fault_options;
    fault_options.transient_failures = 2;
    auto faulty = std::make_shared<FaultyStore>(remote, fault_options);
    faulty->inject(3, FaultyStore::Fault::kIoError);

    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 1;
    options.error_policy = ErrorPolicy::kRetry;
    options.max_retries = 3;
    DataLoader loader(makeImageDataset(faulty), collate, options);

    std::int64_t samples = 0;
    while (auto batch = loader.next())
        samples += batch->data.dim(0);
    EXPECT_EQ(samples, 8);
    EXPECT_EQ(faulty->faultsServed(), 2u);
}

TEST(TimeoutFaults, PersistentDeadlineMissFailsTheLoaderWithTimeout)
{
    // The modeled deadline is deterministic, so retries can't clear
    // it: the loader surfaces a LoaderError carrying kTimeout.
    pipeline::RemoteStoreOptions remote_options;
    remote_options.rtt = 5 * kMillisecond;
    remote_options.bytes_per_ns = 0.0;
    remote_options.deadline = kMillisecond;
    auto remote = std::make_shared<pipeline::RemoteStore>(
        makeEncodedStore(4), remote_options);
    auto faulty =
        std::make_shared<FaultyStore>(remote, FaultyStoreOptions{});

    auto collate = std::make_shared<pipeline::StackCollate>();
    DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 1;
    options.error_policy = ErrorPolicy::kRetry;
    options.max_retries = 1;
    DataLoader loader(makeImageDataset(faulty), collate, options);

    bool threw = false;
    try {
        while (loader.next().has_value()) {
        }
    } catch (const LoaderError &e) {
        threw = true;
        EXPECT_EQ(e.error().code, ErrorCode::kTimeout);
    }
    EXPECT_TRUE(threw);
}

} // namespace
} // namespace lotus
