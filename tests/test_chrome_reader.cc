/**
 * @file
 * Tests for the Chrome trace JSON reader and the augment-existing-
 * trace workflow (paper §III-C).
 */

#include <gtest/gtest.h>

#include "common/files.h"
#include "common/rng.h"
#include "core/lotustrace/visualize.h"
#include "trace/chrome_reader.h"
#include "trace/chrome_trace.h"

namespace lotus::trace {
namespace {

TEST(JsonParser, Scalars)
{
    using detail::parseJson;
    EXPECT_EQ(parseJson("42").number, 42.0);
    EXPECT_EQ(parseJson("-3.5e2").number, -350.0);
    EXPECT_TRUE(parseJson("true").boolean);
    EXPECT_EQ(parseJson("null").kind, detail::JsonValue::Kind::Null);
    EXPECT_EQ(parseJson("\"hi\"").string, "hi");
}

TEST(JsonParser, StringEscapes)
{
    using detail::parseJson;
    EXPECT_EQ(parseJson("\"a\\\"b\\\\c\\nd\\t\"").string, "a\"b\\c\nd\t");
    EXPECT_EQ(parseJson("\"\\u0041\"").string, "A");
    EXPECT_EQ(parseJson("\"\\u00e9\"").string, "\xc3\xa9"); // é in UTF-8
}

TEST(JsonParser, NestedStructures)
{
    const auto value = detail::parseJson(
        "{\"a\": [1, 2, {\"b\": \"x\"}], \"c\": {}}");
    ASSERT_EQ(value.kind, detail::JsonValue::Kind::Object);
    const auto *a = value.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->array.size(), 3u);
    EXPECT_EQ(a->array[2].find("b")->string, "x");
    EXPECT_NE(value.find("c"), nullptr);
    EXPECT_EQ(value.find("missing"), nullptr);
}

TEST(JsonParser, MalformedInputFatal)
{
    EXPECT_DEATH(detail::parseJson("{\"a\": }"), "");
    EXPECT_DEATH(detail::parseJson("[1, 2"), "");
    EXPECT_DEATH(detail::parseJson("\"unterminated"), "");
    EXPECT_DEATH(detail::parseJson("{} trailing"), "");
}

TEST(ChromeReader, ParsesObjectAndArrayForms)
{
    const std::string object_form =
        "{\"traceEvents\":[{\"name\":\"op\",\"ph\":\"X\",\"ts\":1.5,"
        "\"dur\":2.0,\"pid\":3,\"tid\":4}],\"displayTimeUnit\":\"ms\"}";
    auto events = parseChromeTrace(object_form);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "op");
    EXPECT_EQ(events[0].phase, 'X');
    EXPECT_DOUBLE_EQ(events[0].ts_us, 1.5);
    EXPECT_DOUBLE_EQ(events[0].dur_us, 2.0);
    EXPECT_EQ(events[0].pid, 3);
    EXPECT_EQ(events[0].tid, 4);

    const std::string array_form =
        "[{\"name\":\"a\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":1}]";
    EXPECT_EQ(parseChromeTrace(array_form).size(), 1u);
}

TEST(ChromeReader, ReadsArgsAndIds)
{
    const std::string json =
        "[{\"name\":\"f\",\"ph\":\"s\",\"ts\":0,\"pid\":1,\"tid\":1,"
        "\"id\":-7,\"args\":{\"batch\":\"12\",\"n\":5}}]";
    const auto events = parseChromeTrace(json);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].has_id);
    EXPECT_EQ(events[0].id, -7);
    ASSERT_EQ(events[0].args.size(), 2u);
    EXPECT_EQ(events[0].args[0].second, "12");
    EXPECT_EQ(events[0].args[1].second, "5");
}

TEST(ChromeReader, RoundTripsBuilderOutput)
{
    ChromeTraceBuilder builder;
    builder.setProcessName(9, "main process");
    builder.addComplete("SBatchPreprocessed_0", "preprocess", 1000, 500,
                        10, 10);
    builder.addFlow("batch_0", 1500, 10, 10, 2000, 9, 9);
    const auto events = parseChromeTrace(builder.toJson());
    ASSERT_EQ(events.size(), builder.events().size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].name, builder.events()[i].name);
        EXPECT_EQ(events[i].phase, builder.events()[i].phase);
        EXPECT_DOUBLE_EQ(events[i].ts_us, builder.events()[i].ts_us);
        EXPECT_EQ(events[i].pid, builder.events()[i].pid);
    }
}

TEST(ChromeReader, AugmentWorkflowPreservesFrameworkEvents)
{
    // A "framework profiler" trace with positive ids...
    const std::string framework =
        "{\"traceEvents\":[{\"name\":\"aten::conv2d\",\"ph\":\"X\","
        "\"ts\":100,\"dur\":50,\"pid\":1,\"tid\":1,\"id\":17}]}";

    // ... plus Lotus records merged under negative synthetic ids.
    std::vector<TraceRecord> records;
    TraceRecord pre;
    pre.kind = RecordKind::BatchPreprocessed;
    pre.batch_id = 0;
    pre.pid = 10;
    pre.start = 0;
    pre.duration = 90 * kMicrosecond;
    records.push_back(pre);
    TraceRecord consumed;
    consumed.kind = RecordKind::BatchConsumed;
    consumed.batch_id = 0;
    consumed.pid = 1;
    consumed.start = 100 * kMicrosecond;
    consumed.duration = kMicrosecond;
    records.push_back(consumed);

    ChromeTraceBuilder builder;
    for (const auto &event : parseChromeTrace(framework))
        builder.addRaw(event);
    core::lotustrace::augmentTrace(builder, records, {});

    const std::string merged = builder.toJson();
    EXPECT_NE(merged.find("aten::conv2d"), std::string::npos);
    EXPECT_NE(merged.find("\"id\":17"), std::string::npos);
    EXPECT_NE(merged.find("SBatchPreprocessed_0"), std::string::npos);
    // Re-parse the merged document: it must still be valid.
    const auto reparsed = parseChromeTrace(merged);
    EXPECT_GE(reparsed.size(), 4u); // conv2d + 2 spans + flow pair...
}

/** Property: jsonEscape composed with the parser is the identity for
 *  arbitrary byte strings (the writer and reader agree). */
class EscapeRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EscapeRoundTrip, EscapeThenParseIsIdentity)
{
    Rng rng(GetParam());
    std::string original;
    const int len = static_cast<int>(rng.uniformInt(0, 60));
    for (int i = 0; i < len; ++i) {
        // Printable ASCII plus the characters that need escaping.
        const char *alphabet =
            "abcXYZ 0123456789\"\\\n\r\t_:{}[],";
        original += alphabet[rng.nextBelow(29)];
    }
    const std::string quoted = "\"" + jsonEscape(original) + "\"";
    EXPECT_EQ(detail::parseJson(quoted).string, original);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapeRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 25));

TEST(ChromeReader, FileRoundTrip)
{
    TempDir dir("lotus-reader");
    ChromeTraceBuilder builder;
    builder.addComplete("x", "", 0, 1, 1, 1);
    const std::string path = dir.file("t.json");
    builder.writeTo(path);
    EXPECT_EQ(readChromeTraceFile(path).size(), 1u);
}

} // namespace
} // namespace lotus::trace
