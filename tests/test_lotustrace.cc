/**
 * @file
 * Tests for LotusTrace analysis and Chrome-trace visualization over
 * hand-crafted record sets with known answers.
 */

#include <gtest/gtest.h>

#include "core/lotustrace/analysis.h"
#include "core/lotustrace/report.h"
#include "core/lotustrace/visualize.h"
#include "trace/chrome_reader.h"

namespace lotus::core::lotustrace {
namespace {

using trace::RecordKind;
using trace::TraceRecord;

TraceRecord
record(RecordKind kind, std::int64_t batch, std::uint32_t pid, TimeNs start,
       TimeNs duration, const std::string &op = "")
{
    TraceRecord r;
    r.kind = kind;
    r.batch_id = batch;
    r.pid = pid;
    r.start = start;
    r.duration = duration;
    r.op_name = op;
    return r;
}

/** Two batches: batch 0 in order, batch 1 out of order. */
std::vector<TraceRecord>
twoBatchScenario()
{
    return {
        // Worker 10 preprocesses batch 0 from 0 to 100 ms.
        record(RecordKind::BatchPreprocessed, 0, 10, 0, 100 * kMillisecond),
        // Worker 11 preprocesses batch 1 from 0 to 40 ms (finishes
        // first -> out of order).
        record(RecordKind::BatchPreprocessed, 1, 11, 0, 40 * kMillisecond),
        // Main (pid 1) waits 100 ms for batch 0.
        record(RecordKind::BatchWait, 0, 1, 0, 100 * kMillisecond),
        record(RecordKind::BatchConsumed, 0, 1, 100 * kMillisecond,
               2 * kMillisecond),
        // Batch 1 was cached: sentinel wait, consumed at 110 ms.
        record(RecordKind::BatchWait, 1, 1, 110 * kMillisecond,
               trace::kOutOfOrderSentinel),
        record(RecordKind::BatchConsumed, 1, 1, 110 * kMillisecond,
               kMillisecond),
        record(RecordKind::GpuCompute, 0, 2, 102 * kMillisecond,
               30 * kMillisecond),
        record(RecordKind::GpuCompute, 1, 2, 132 * kMillisecond,
               30 * kMillisecond),
    };
}

TEST(TraceAnalysis, BatchTimelinesReconstructed)
{
    TraceAnalysis analysis(twoBatchScenario());
    ASSERT_EQ(analysis.batches().size(), 2u);
    const auto &b0 = analysis.batches()[0];
    EXPECT_EQ(b0.batch_id, 0);
    EXPECT_EQ(b0.worker_pid, 10u);
    EXPECT_EQ(b0.main_pid, 1u);
    EXPECT_EQ(b0.preprocessTime(), 100 * kMillisecond);
    EXPECT_FALSE(b0.outOfOrder());
    // Consumed right at preprocess end: zero delay.
    EXPECT_EQ(b0.delayTime(), 0);

    const auto &b1 = analysis.batches()[1];
    EXPECT_TRUE(b1.outOfOrder());
    // Finished at 40 ms, consumed at 110 ms -> 70 ms delay.
    EXPECT_EQ(b1.delayTime(), 70 * kMillisecond);
}

TEST(TraceAnalysis, WaitAndDelayAggregates)
{
    TraceAnalysis analysis(twoBatchScenario());
    EXPECT_DOUBLE_EQ(analysis.outOfOrderFraction(), 0.5);
    EXPECT_DOUBLE_EQ(analysis.fractionWaitsOver(50 * kMillisecond), 0.5);
    EXPECT_DOUBLE_EQ(analysis.fractionDelaysOver(50 * kMillisecond), 0.5);
    EXPECT_NEAR(analysis.totalPreprocessCpuSeconds(), 0.14, 1e-12);
    EXPECT_EQ(analysis.maxGpuTime(), 30 * kMillisecond);
    EXPECT_EQ(analysis.epochSpan(), 162 * kMillisecond);
}

TEST(TraceAnalysis, OpStatsComputeTableTwoColumns)
{
    std::vector<TraceRecord> records;
    // 100 ops at 1 ms, 100 at 20 ms.
    for (int i = 0; i < 100; ++i) {
        records.push_back(record(RecordKind::TransformOp, 0, 10,
                                 i * kMillisecond, kMillisecond, "Fast"));
        records.push_back(record(RecordKind::TransformOp, 0, 10,
                                 i * kMillisecond, 20 * kMillisecond,
                                 "Slow"));
    }
    // And one sub-100 µs op.
    for (int i = 0; i < 10; ++i) {
        records.push_back(record(RecordKind::TransformOp, 0, 10, 0,
                                 50 * kMicrosecond, "Tiny"));
    }
    TraceAnalysis analysis(records);
    const auto stats = analysis.opStats();
    ASSERT_EQ(stats.size(), 3u);
    EXPECT_EQ(stats[0].name, "Fast");
    EXPECT_DOUBLE_EQ(stats[0].summary_ms.mean, 1.0);
    EXPECT_DOUBLE_EQ(stats[0].frac_below_10ms, 1.0);
    EXPECT_DOUBLE_EQ(stats[0].frac_below_100us, 0.0);
    EXPECT_EQ(stats[1].name, "Slow");
    EXPECT_DOUBLE_EQ(stats[1].frac_below_10ms, 0.0);
    EXPECT_NEAR(stats[1].total_seconds, 2.0, 1e-9);
    EXPECT_EQ(stats[2].name, "Tiny");
    EXPECT_DOUBLE_EQ(stats[2].frac_below_100us, 1.0);

    const auto by_op = analysis.cpuSecondsByOp();
    EXPECT_NEAR(by_op.at("Fast"), 0.1, 1e-9);
}

TEST(TraceAnalysis, PerBatchSeriesOrderedByBatchId)
{
    TraceAnalysis analysis(twoBatchScenario());
    const auto pre = analysis.perBatchPreprocessMs();
    ASSERT_EQ(pre.size(), 2u);
    EXPECT_DOUBLE_EQ(pre[0], 100.0);
    EXPECT_DOUBLE_EQ(pre[1], 40.0);
    const auto waits = analysis.waitTimesMs();
    EXPECT_DOUBLE_EQ(waits[0], 100.0);
    EXPECT_NEAR(waits[1], 0.001, 1e-9);
}

TEST(TraceAnalysis, EmptyRecordsAreSafe)
{
    TraceAnalysis analysis({});
    EXPECT_TRUE(analysis.batches().empty());
    EXPECT_EQ(analysis.epochSpan(), 0);
    EXPECT_DOUBLE_EQ(analysis.outOfOrderFraction(), 0.0);
    EXPECT_TRUE(analysis.opStats().empty());
}

TEST(TraceAnalysis, IoEventsAggregateIntoBatchesAndStats)
{
    auto records = twoBatchScenario();
    records.push_back(record(RecordKind::IoEvent, 0, 10, 10 * kMillisecond,
                             2 * kMillisecond, "io:4096"));
    records.push_back(record(RecordKind::IoEvent, 0, 10, 20 * kMillisecond,
                             4 * kMillisecond, "io:1024"));
    records.push_back(record(RecordKind::IoEvent, 1, 11, 5 * kMillisecond,
                             kMillisecond, "io:512"));
    TraceAnalysis analysis(records);
    ASSERT_EQ(analysis.batches().size(), 2u);
    const auto &b0 = analysis.batches()[0];
    EXPECT_EQ(b0.io_reads, 2u);
    EXPECT_EQ(b0.io_bytes, 4096u + 1024u);
    EXPECT_EQ(b0.io_time, 6 * kMillisecond);
    const IoStats io = analysis.ioStats();
    EXPECT_EQ(io.reads, 3u);
    EXPECT_EQ(io.bytes, 4096u + 1024u + 512u);
    EXPECT_EQ(io.total_time, 7 * kMillisecond);
    EXPECT_EQ(io.read_ms.count, 3u);
    EXPECT_DOUBLE_EQ(io.read_ms.max, 4.0);
    EXPECT_DOUBLE_EQ(io.read_ms.min, 1.0);
}

TEST(Visualize, IoEventRoundTripsThroughChromeReader)
{
    auto records = twoBatchScenario();
    records.push_back(record(RecordKind::IoEvent, 0, 10, 10 * kMillisecond,
                             2 * kMillisecond, "io:4096"));
    const std::string json = toChromeJson(records);
    const auto events = trace::parseChromeTrace(json);
    ASSERT_FALSE(events.empty());
    bool found = false;
    for (const auto &event : events) {
        if (event.category != "io")
            continue;
        found = true;
        EXPECT_EQ(event.name, "io:4096");
        EXPECT_EQ(event.phase, 'X');
        EXPECT_DOUBLE_EQ(event.dur_us, 2000.0);
    }
    EXPECT_TRUE(found);
}

TEST(Visualize, CoarseTraceHasLanesSpansAndFlows)
{
    const std::string json = toChromeJson(twoBatchScenario());
    EXPECT_NE(json.find("SBatchPreprocessed_0"), std::string::npos);
    EXPECT_NE(json.find("SBatchWait_1"), std::string::npos);
    EXPECT_NE(json.find("SBatchConsumed_0"), std::string::npos);
    EXPECT_NE(json.find("SGpuCompute_1"), std::string::npos);
    EXPECT_NE(json.find("DataLoader worker 0"), std::string::npos);
    EXPECT_NE(json.find("main process"), std::string::npos);
    // Flow arrows exist for both batches.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("batch_1"), std::string::npos);
}

TEST(Visualize, FineTraceIncludesOps)
{
    auto records = twoBatchScenario();
    records.push_back(record(RecordKind::TransformOp, 0, 10, kMillisecond,
                             kMillisecond, "RandomResizedCrop"));
    VisualizeOptions options;
    options.per_op = true;
    const std::string fine = toChromeJson(records, options);
    EXPECT_NE(fine.find("SRandomResizedCrop"), std::string::npos);

    VisualizeOptions coarse;
    coarse.per_op = false;
    EXPECT_EQ(toChromeJson(records, coarse).find("SRandomResizedCrop"),
              std::string::npos);
}

TEST(Visualize, NegativeSyntheticIdsThroughout)
{
    trace::ChromeTraceBuilder builder;
    // Simulate augmenting an existing framework trace with a
    // positive-id event.
    trace::ChromeEvent existing;
    existing.name = "aten::conv2d";
    existing.phase = 'X';
    existing.id = 17;
    existing.has_id = true;
    builder.addRaw(existing);
    augmentTrace(builder, twoBatchScenario());
    for (const auto &event : builder.events()) {
        if (event.has_id && event.name != "aten::conv2d") {
            EXPECT_LT(event.id, 0);
        }
    }
    // The framework event survives augmentation untouched.
    EXPECT_NE(builder.toJson().find("aten::conv2d"), std::string::npos);
}

// --- Automated report -------------------------------------------------

std::vector<TraceRecord>
regimeScenario(TimeNs wait_each, TimeNs delay_each, int batches)
{
    std::vector<TraceRecord> records;
    for (int b = 0; b < batches; ++b) {
        const TimeNs base = b * kSecond;
        records.push_back(record(RecordKind::BatchPreprocessed, b, 10,
                                 base, 100 * kMillisecond));
        records.push_back(record(RecordKind::BatchWait, b, 1, base,
                                 wait_each));
        records.push_back(record(
            RecordKind::BatchConsumed, b, 1,
            base + 100 * kMillisecond + delay_each, kMillisecond));
        records.push_back(record(RecordKind::TransformOp, b, 10, base,
                                 80 * kMillisecond, "Loader"));
        records.push_back(record(RecordKind::TransformOp, b, 10, base,
                                 20 * kMillisecond, "ToTensor"));
        records.push_back(record(RecordKind::GpuCompute, b, 2,
                                 base + 200 * kMillisecond,
                                 30 * kMillisecond));
    }
    return records;
}

TEST(Report, DiagnosesPreprocessingBound)
{
    const auto report = buildReport(
        regimeScenario(400 * kMillisecond, 5 * kMillisecond, 8));
    EXPECT_EQ(report.bottleneck, Bottleneck::Preprocessing);
    EXPECT_GT(report.total_wait_s, report.total_delay_s);
    ASSERT_FALSE(report.ops_by_cost.empty());
    EXPECT_EQ(report.ops_by_cost.front().name, "Loader");
    EXPECT_FALSE(report.recommendations.empty());
    const std::string text = report.render();
    EXPECT_NE(text.find("preprocessing-bound"), std::string::npos);
    EXPECT_NE(text.find("Loader"), std::string::npos);
}

TEST(Report, DiagnosesAcceleratorBound)
{
    const auto report = buildReport(
        regimeScenario(2 * kMillisecond, 600 * kMillisecond, 8));
    EXPECT_EQ(report.bottleneck, Bottleneck::Accelerator);
    bool mentions_fewer_workers = false;
    for (const auto &rec : report.recommendations) {
        if (rec.find("fewer workers") != std::string::npos)
            mentions_fewer_workers = true;
    }
    EXPECT_TRUE(mentions_fewer_workers);
}

TEST(Report, FlagsHeavyTailedOps)
{
    auto records = regimeScenario(400 * kMillisecond, kMillisecond, 8);
    // Add an op whose P90 is far above its mean (a bimodal ~15%
    // expensive path, like RandBalancedCrop's foreground search).
    for (int i = 0; i < 18; ++i) {
        records.push_back(record(RecordKind::TransformOp, 0, 10, 0,
                                 kMillisecond, "RBC"));
    }
    for (int i = 0; i < 3; ++i) {
        records.push_back(record(RecordKind::TransformOp, 0, 10, 0,
                                 400 * kMillisecond, "RBC"));
    }
    const auto report = buildReport(records);
    bool flagged = false;
    for (const auto &finding : report.findings) {
        if (finding.find("RBC") != std::string::npos &&
            finding.find("heavy-tailed") != std::string::npos)
            flagged = true;
    }
    EXPECT_TRUE(flagged);
}

TEST(Report, EmptyRecordsSafe)
{
    const auto report = buildReport({});
    EXPECT_EQ(report.bottleneck, Bottleneck::Unknown);
    EXPECT_TRUE(report.findings.empty());
    EXPECT_FALSE(report.render().empty());
}

} // namespace
} // namespace lotus::core::lotustrace
