/**
 * @file
 * Tests for the profiler models: capabilities (Table IV), sampling
 * behaviour (missed short ops), storage accounting, and interference
 * hooks.
 */

#include <gtest/gtest.h>

#include <thread>

#include "hwcount/registry.h"
#include "profilers/presets.h"

namespace lotus::profilers {
namespace {

class ProfilerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        hwcount::KernelRegistry::instance().reset();
        hwcount::KernelRegistry::instance().setTimelineEnabled(false);
    }

    void TearDown() override { SetUp(); }
};

/** Spin inside a named op so samplers can observe it. */
void
runOp(const std::string &name, TimeNs duration,
      trace::TraceLogger *logger = nullptr)
{
    auto &registry = hwcount::KernelRegistry::instance();
    const auto tag = registry.registerOp(name);
    trace::SpanTimer span(logger, trace::RecordKind::TransformOp);
    span.record().op_name = name;
    {
        hwcount::OpTagScope op(tag);
        const auto &clock = SteadyClock::instance();
        const TimeNs deadline = clock.now() + duration;
        while (clock.now() < deadline) {
        }
    }
    span.finish();
}

TEST_F(ProfilerTest, CapabilitiesMatchTableFour)
{
    const auto lotus = makeLotus();
    const auto scalene = makeScaleneLike();
    const auto pyspy = makePySpyLike();
    const auto austin = makeAustinLike();
    const auto torch = makeTorchProfilerLike();

    EXPECT_TRUE(lotus->capabilities().epoch_ops);
    EXPECT_TRUE(lotus->capabilities().per_batch);
    EXPECT_TRUE(lotus->capabilities().async_flow);
    EXPECT_TRUE(lotus->capabilities().wait_time);
    EXPECT_TRUE(lotus->capabilities().delay_time);

    EXPECT_TRUE(pyspy->capabilities().epoch_ops);
    EXPECT_FALSE(pyspy->capabilities().per_batch);
    EXPECT_FALSE(pyspy->capabilities().wait_time);
    EXPECT_FALSE(austin->capabilities().async_flow);
    EXPECT_FALSE(scalene->capabilities().delay_time);

    EXPECT_TRUE(torch->capabilities().wait_time);
    EXPECT_FALSE(torch->capabilities().epoch_ops);
    EXPECT_FALSE(torch->capabilities().per_batch);
}

TEST_F(ProfilerTest, LotusKeepsRecordsAndReportsPerOpSeconds)
{
    trace::TraceLogger logger;
    auto lotus = makeLotus();
    lotus->attach(logger);
    lotus->start();
    runOp("OpA", 2 * kMillisecond, &logger);
    runOp("OpA", 2 * kMillisecond, &logger);
    lotus->stop();
    EXPECT_GT(lotus->logStorageBytes(), 0u);
    const auto seconds = lotus->perOpEpochSeconds();
    ASSERT_EQ(seconds.count("OpA"), 1u);
    // The lower bound is tight (the op spins for its full duration);
    // the upper bound is loose because preemption under parallel test
    // load inflates wall-clock spans well past the nominal 4 ms.
    EXPECT_GE(seconds.at("OpA"), 0.0035);
    EXPECT_LT(seconds.at("OpA"), 0.1);
}

TEST_F(ProfilerTest, SamplingProfilerSeesLongOpsMissesShortOnes)
{
    trace::TraceLogger logger;
    SamplingProfilerConfig config;
    config.name = "test-sampler";
    config.interval = 2 * kMillisecond;
    auto profiler = std::make_unique<SamplingProfiler>(config);
    profiler->attach(logger);
    profiler->start();
    // Long op: 60 ms -> ~30 samples. Short ops: 50 µs each, far
    // below the interval, so per-op time is wildly unreliable.
    runOp("LongOp", 60 * kMillisecond);
    for (int i = 0; i < 10; ++i)
        runOp("ShortOp", 50 * kMicrosecond);
    profiler->stop();

    const auto seconds = profiler->perOpEpochSeconds();
    ASSERT_EQ(seconds.count("LongOp"), 1u);
    EXPECT_NEAR(seconds.at("LongOp"), 0.060, 0.025);
    const double short_reported =
        seconds.count("ShortOp") ? seconds.at("ShortOp") : 0.0;
    // True total is 0.5 ms; the sampler either misses it entirely or
    // quantizes to whole sampling intervals.
    EXPECT_TRUE(short_reported == 0.0 ||
                short_reported >= toSec(config.interval));
}

TEST_F(ProfilerTest, SamplerStorageGrowsWithRate)
{
    trace::TraceLogger logger;
    auto coarse = makePySpyLike();   // 10 ms
    auto fine = makeAustinLike();    // 100 µs
    coarse->attach(logger);
    fine->attach(logger);
    coarse->start();
    fine->start();
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    coarse->stop();
    fine->stop();
    EXPECT_GT(fine->totalSamples(), coarse->totalSamples() * 10);
    EXPECT_GT(fine->logStorageBytes(), coarse->logStorageBytes() * 10);
}

TEST_F(ProfilerTest, ScaleneLikeChargesPerOpCost)
{
    trace::TraceLogger logger;
    auto scalene = makeScaleneLike();
    scalene->attach(logger);
    const auto &clock = SteadyClock::instance();
    const TimeNs before = clock.now();
    runOp("Cheap", 10 * kMicrosecond, &logger);
    const TimeNs elapsed = clock.now() - before;
    // The in-process tracer's per-op cost (350 µs) dominates.
    EXPECT_GE(elapsed, 300 * kMicrosecond);
    // And its aggregated profile stays small.
    EXPECT_LT(scalene->logStorageBytes(), 10000u);
}

TEST_F(ProfilerTest, ScaleneAggregateStorageSmall)
{
    trace::TraceLogger logger;
    auto scalene = makeScaleneLike();
    scalene->attach(logger);
    scalene->start();
    runOp("OpX", 30 * kMillisecond);
    scalene->stop();
    auto austin = makeAustinLike();
    trace::TraceLogger logger2;
    austin->attach(logger2);
    austin->start();
    runOp("OpX", 30 * kMillisecond);
    austin->stop();
    EXPECT_LT(scalene->logStorageBytes(), austin->logStorageBytes());
}

TEST_F(ProfilerTest, FrameworkTracerCapturesWaitsOnly)
{
    trace::TraceLogger logger;
    auto torch = makeTorchProfilerLike();
    torch->attach(logger);
    torch->start();

    trace::TraceRecord wait;
    wait.kind = trace::RecordKind::BatchWait;
    wait.batch_id = 0;
    wait.duration = 7 * kMillisecond;
    logger.log(wait);

    trace::TraceRecord worker;
    worker.kind = trace::RecordKind::BatchPreprocessed;
    worker.batch_id = 0;
    worker.duration = 100 * kMillisecond;
    logger.log(worker);

    // Native framework events recorded while tracing.
    { hwcount::KernelScope scope(hwcount::KernelId::PinMemoryCopy); }
    torch->stop();

    const auto waits = torch->waitTimesMs();
    ASSERT_EQ(waits.size(), 1u);
    EXPECT_DOUBLE_EQ(waits[0], 7.0);
    EXPECT_TRUE(torch->perOpEpochSeconds().empty());
    EXPECT_GT(torch->logStorageBytes(), 0u);
    EXPECT_GT(torch->bufferedBytes(), 0u);
    // Baseline profilers do not keep LotusTrace records.
    EXPECT_EQ(logger.recordCount(), 0u);
}

TEST_F(ProfilerTest, FrameworkTracerRestoresTimelineState)
{
    auto &registry = hwcount::KernelRegistry::instance();
    trace::TraceLogger logger;
    auto torch = makeTorchProfilerLike();
    torch->attach(logger);
    EXPECT_FALSE(registry.timelineEnabled());
    torch->start();
    EXPECT_TRUE(registry.timelineEnabled());
    torch->stop();
    EXPECT_FALSE(registry.timelineEnabled());
}

} // namespace
} // namespace lotus::profilers
