/**
 * @file
 * Tests for the always-on telemetry layer: lock-free counter/gauge/
 * histogram correctness under contention (run these under TSan via
 * tools/run_tsan.sh), snapshot diffing, exporter round-trips, the
 * periodic reporter, and the end-to-end loader/pipeline/codec
 * instrumentation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/files.h"
#include "dataflow/data_loader.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "metrics/export.h"
#include "metrics/metrics.h"
#include "metrics/reporter.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/transforms/vision.h"
#include "trace/chrome_reader.h"

namespace lotus::metrics {
namespace {

/** Fresh global state per test: enabled on, all values zeroed. */
class MetricsTest : public ::testing::Test
{
  protected:
    MetricsTest() : enable_(true)
    {
        MetricsRegistry::instance().reset();
    }
    ~MetricsTest() override { MetricsRegistry::instance().reset(); }

  private:
    ScopedEnable enable_;
};

TEST_F(MetricsTest, CounterExactUnderContention)
{
    MetricsRegistry registry;
    Counter *counter = registry.counter("lotus_test_events_total");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kAddsPerThread = 100'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < kAddsPerThread; ++i)
                counter->add(1);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(counter->value(), kThreads * kAddsPerThread);
}

TEST_F(MetricsTest, HistogramExactCountAndSumUnderContention)
{
    MetricsRegistry registry;
    Histogram *hist = registry.histogram("lotus_test_latency_ns");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kRecordsPerThread = 50'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (std::uint64_t i = 0; i < kRecordsPerThread; ++i)
                hist->record(static_cast<std::uint64_t>(t) * 1000 + i % 97);
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_EQ(hist->count(), kThreads * kRecordsPerThread);
    std::uint64_t expected_sum = 0;
    for (int t = 0; t < kThreads; ++t) {
        for (std::uint64_t i = 0; i < kRecordsPerThread; ++i)
            expected_sum += static_cast<std::uint64_t>(t) * 1000 + i % 97;
    }
    EXPECT_EQ(hist->sum(), expected_sum);
    std::uint64_t bucket_total = 0;
    for (const auto count : hist->bucketCounts())
        bucket_total += count;
    EXPECT_EQ(bucket_total, hist->count());
}

TEST_F(MetricsTest, BucketIndexMonotoneAndBoundsConsistent)
{
    unsigned last_index = 0;
    for (std::uint64_t v = 0; v < 100'000; v = v < 512 ? v + 1 : v * 9 / 8) {
        const unsigned index = Histogram::bucketIndex(v);
        EXPECT_GE(index, last_index) << "value " << v;
        EXPECT_LE(Histogram::bucketLowerBound(index), v) << "value " << v;
        EXPECT_GE(Histogram::bucketUpperBound(index), v) << "value " << v;
        last_index = index;
    }
    // Relative bucket width stays <= 12.5% above the exact range
    // (checked over the reachable, non-overflowing index range; the
    // largest uint64 maps to index 251).
    for (unsigned i = 8; i < 250; ++i) {
        const double lo =
            static_cast<double>(Histogram::bucketLowerBound(i));
        const double hi =
            static_cast<double>(Histogram::bucketUpperBound(i));
        EXPECT_LE((hi - lo) / lo, 0.25) << "bucket " << i;
        EXPECT_EQ(Histogram::bucketUpperBound(i) + 1,
                  Histogram::bucketLowerBound(i + 1));
    }
}

TEST_F(MetricsTest, HistogramQuantilesBracketTrueValues)
{
    Histogram hist;
    for (std::uint64_t v = 1; v <= 10'000; ++v)
        hist.record(v);
    // True p50 = 5000; the estimate is the bucket upper bound, so it
    // can overshoot by at most the 12.5% bucket width.
    EXPECT_GE(hist.quantile(0.5), 5000u);
    EXPECT_LE(hist.quantile(0.5), 5000u * 9 / 8 + 1);
    EXPECT_GE(hist.quantile(0.99), 9900u);
    EXPECT_LE(hist.quantile(0.99), 9900u * 9 / 8 + 1);
    EXPECT_EQ(hist.quantile(0.0), Histogram::bucketUpperBound(
                                      Histogram::bucketIndex(1)));
    EXPECT_GE(hist.quantile(1.0), 10'000u);
}

TEST_F(MetricsTest, DisabledMetricsRecordNothing)
{
    MetricsRegistry registry;
    Counter *counter = registry.counter("c");
    Gauge *gauge = registry.gauge("g");
    Histogram *hist = registry.histogram("h");
    {
        ScopedEnable disable(false);
        counter->add(5);
        gauge->set(7);
        hist->record(9);
    }
    EXPECT_EQ(counter->value(), 0u);
    EXPECT_EQ(gauge->value(), 0);
    EXPECT_EQ(hist->count(), 0u);
}

TEST_F(MetricsTest, RegistryGetOrCreateReturnsStablePointers)
{
    MetricsRegistry registry;
    Counter *a = registry.counter("lotus_x_total");
    Counter *b = registry.counter("lotus_x_total");
    EXPECT_EQ(a, b);
    EXPECT_NE(registry.counter("lotus_y_total"), a);
}

TEST_F(MetricsTest, SnapshotDiffComputesDeltasAndRates)
{
    MetricsRegistry registry;
    Counter *counter = registry.counter("lotus_test_total");
    Gauge *gauge = registry.gauge("lotus_test_depth");
    Histogram *hist = registry.histogram("lotus_test_ns");
    counter->add(10);
    gauge->set(3);
    hist->record(100);
    const Snapshot first = registry.snapshot();
    counter->add(32);
    gauge->set(5);
    hist->record(100);
    hist->record(200'000);
    const Snapshot second = registry.snapshot();

    const Snapshot delta = diff(second, first);
    EXPECT_EQ(delta.counters.at("lotus_test_total"), 32u);
    EXPECT_EQ(delta.gauges.at("lotus_test_depth"), 5); // newer level
    EXPECT_EQ(delta.histograms.at("lotus_test_ns").count, 2u);
    EXPECT_EQ(delta.histograms.at("lotus_test_ns").sum, 200'100u);
    EXPECT_GT(delta.taken_at, 0);
    EXPECT_GT(ratePerSec(delta.counters.at("lotus_test_total"),
                         delta.taken_at),
              0.0);
    // The diffed histogram re-derives quantiles from diffed buckets:
    // both remaining records straddle 100 and 200000.
    EXPECT_LE(delta.histograms.at("lotus_test_ns").p50, 200'000u);
    EXPECT_GE(delta.histograms.at("lotus_test_ns").p99, 200'000u);
}

TEST_F(MetricsTest, SnapshotDiffReportsPostResetCounterValue)
{
    MetricsRegistry registry;
    Counter *counter = registry.counter("lotus_reset_total");
    counter->add(100);
    const Snapshot older = registry.snapshot();
    registry.reset();
    counter->add(5);
    const Snapshot newer = registry.snapshot();
    // The counter went backwards (100 -> 5): a reset happened in the
    // interval, and the delta is everything counted since — not a
    // clamped 0 that would freeze rates until the counter re-passes
    // its old high-water mark.
    const Snapshot delta = diff(newer, older);
    EXPECT_EQ(delta.counters.at("lotus_reset_total"), 5u);
}

TEST_F(MetricsTest, SnapshotDiffReportsPostResetHistogram)
{
    MetricsRegistry registry;
    Histogram *hist = registry.histogram("lotus_reset_ns");
    for (int i = 0; i < 10; ++i)
        hist->record(1'000);
    const Snapshot older = registry.snapshot();
    registry.reset();
    hist->record(2'000);
    hist->record(2'000);
    hist->record(4'000);
    const Snapshot newer = registry.snapshot();
    const Snapshot delta = diff(newer, older);
    const Snapshot::Hist &h = delta.histograms.at("lotus_reset_ns");
    EXPECT_EQ(h.count, 3u);
    EXPECT_EQ(h.sum, 8'000u);
    // Quantiles come from the post-reset contents.
    EXPECT_GE(h.p99, 4'000u);
}

TEST_F(MetricsTest, SnapshotDiffKeepsSeriesPresentOnlyInOlder)
{
    Snapshot older;
    older.taken_at = 100;
    older.counters["lotus_vanished_total"] = 7;
    older.histograms["lotus_vanished_ns"].count = 3;
    older.histograms["lotus_vanished_ns"].sum = 300;
    Snapshot newer;
    newer.taken_at = 200;
    // The newer snapshot (say, a restarted source) lacks the series:
    // the diff keeps them visible at 0 instead of dropping the rows.
    const Snapshot delta = diff(newer, older);
    ASSERT_EQ(delta.counters.count("lotus_vanished_total"), 1u);
    EXPECT_EQ(delta.counters.at("lotus_vanished_total"), 0u);
    ASSERT_EQ(delta.histograms.count("lotus_vanished_ns"), 1u);
    EXPECT_EQ(delta.histograms.at("lotus_vanished_ns").count, 0u);
}

TEST_F(MetricsTest, NearestRankIsExactOnIntegralProducts)
{
    // 0.1 * 70 evaluates to 7.000000000000001 in double, which the
    // old float-ceiling formulation bumped to rank 8.
    EXPECT_EQ(nearestRank(0.10, 70), 7u);
    EXPECT_EQ(nearestRank(0.99, 100), 99u);
    EXPECT_EQ(nearestRank(0.29, 100), 29u);
    EXPECT_EQ(nearestRank(0.50, 2), 1u);
    EXPECT_EQ(nearestRank(0.75, 4), 3u);
    // Non-integral products still take the true ceiling.
    EXPECT_EQ(nearestRank(0.50, 7), 4u);
    EXPECT_EQ(nearestRank(0.90, 7), 7u);
    // Edges: empty input, q at and beyond the bounds.
    EXPECT_EQ(nearestRank(0.5, 0), 0u);
    EXPECT_EQ(nearestRank(0.0, 5), 1u);
    EXPECT_EQ(nearestRank(1.0, 5), 5u);
    EXPECT_EQ(nearestRank(0.000001, 3), 1u);
    EXPECT_EQ(nearestRank(0.999999, 3), 3u);
}

TEST_F(MetricsTest, SnapshotQuantilesMatchHistogramQuantiles)
{
    // Differential pin: quantileFromBuckets over a snapshot's exported
    // buckets must agree with Histogram::quantile over the live
    // histogram, across bucket shapes and ranks — including counts
    // whose q * total is exactly integral (70, 100).
    struct Shape
    {
        const char *name;
        std::vector<std::uint64_t> values;
    };
    std::vector<Shape> shapes;
    shapes.push_back({"single-bucket",
                      std::vector<std::uint64_t>(50, 1'000)});
    Shape uniform{"uniform-70", {}};
    for (std::uint64_t v = 1; v <= 70; ++v)
        uniform.values.push_back(v * 997);
    shapes.push_back(std::move(uniform));
    Shape head{"heavy-head-100", {}};
    for (int i = 0; i < 95; ++i)
        head.values.push_back(10 + static_cast<std::uint64_t>(i));
    for (int i = 0; i < 5; ++i)
        head.values.push_back(1'000'000);
    shapes.push_back(std::move(head));
    Shape tail{"heavy-tail-100", {}};
    for (int i = 0; i < 5; ++i)
        tail.values.push_back(3);
    for (int i = 0; i < 95; ++i)
        tail.values.push_back(50'000 +
                              1'000 * static_cast<std::uint64_t>(i));
    shapes.push_back(std::move(tail));

    const double qs[] = {0.0,  0.01, 0.10, 0.25, 0.50,
                         0.75, 0.90, 0.99, 1.0};
    for (const Shape &shape : shapes) {
        MetricsRegistry registry;
        Histogram *hist = registry.histogram("lotus_shape_ns");
        for (const std::uint64_t v : shape.values)
            hist->record(v);
        const Snapshot snapshot = registry.snapshot();
        const Snapshot::Hist &exported =
            snapshot.histograms.at("lotus_shape_ns");
        for (const double q : qs) {
            EXPECT_EQ(quantileFromBuckets(exported.buckets,
                                          exported.count, q),
                      hist->quantile(q))
                << shape.name << " q=" << q;
        }
    }
}

TEST_F(MetricsTest, LabeledNamesSplitBackIntoParts)
{
    const std::string name = labeled("lotus_loader_fetch_ns", "worker", "3");
    EXPECT_EQ(name, "lotus_loader_fetch_ns{worker=\"3\"}");
    std::string family, labels;
    splitLabeled(name, family, labels);
    EXPECT_EQ(family, "lotus_loader_fetch_ns");
    EXPECT_EQ(labels, "worker=\"3\"");
    splitLabeled("bare_name", family, labels);
    EXPECT_EQ(family, "bare_name");
    EXPECT_TRUE(labels.empty());
}

TEST_F(MetricsTest, LabelValueExtractsOneKey)
{
    const std::string name =
        labeled("lotus_service_tasks_total", "client", "7");
    EXPECT_EQ(labelValue(name, "client"), "7");
    EXPECT_EQ(labelValue(name, "worker"), "");
    EXPECT_EQ(labelValue("bare_name", "client"), "");
    // Key matching is exact, not a substring/suffix scan.
    EXPECT_EQ(labelValue("m{subclient=\"9\",client=\"2\"}", "client"), "2");
    EXPECT_EQ(labelValue("m{client=\"2\"}", "lient"), "");
}

/** Minimal Prometheus text parser for the round-trip test. */
struct PromSample
{
    std::string series;
    double value = 0.0;
};

std::vector<PromSample>
parsePrometheus(const std::string &text)
{
    std::vector<PromSample> samples;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const auto space = line.rfind(' ');
        EXPECT_NE(space, std::string::npos) << line;
        samples.push_back(
            {line.substr(0, space), std::stod(line.substr(space + 1))});
    }
    return samples;
}

double
promValue(const std::vector<PromSample> &samples, const std::string &series)
{
    for (const auto &sample : samples) {
        if (sample.series == series)
            return sample.value;
    }
    ADD_FAILURE() << "missing series " << series;
    return -1.0;
}

TEST_F(MetricsTest, PrometheusExportRoundTrips)
{
    MetricsRegistry registry;
    registry.counter("lotus_app_events_total")->add(42);
    registry.counter(labeled("lotus_app_sharded_total", "shard", "0"))
        ->add(7);
    registry.gauge("lotus_app_depth")->set(-3);
    Histogram *hist = registry.histogram(
        labeled("lotus_app_latency_ns", "op", "Resize"));
    hist->record(10);
    hist->record(10);
    hist->record(5'000);

    const std::string text = toPrometheusText(registry.snapshot());
    const auto samples = parsePrometheus(text);

    EXPECT_EQ(promValue(samples, "lotus_app_events_total"), 42.0);
    EXPECT_EQ(promValue(samples, "lotus_app_sharded_total{shard=\"0\"}"),
              7.0);
    EXPECT_EQ(promValue(samples, "lotus_app_depth"), -3.0);
    EXPECT_EQ(promValue(samples,
                        "lotus_app_latency_ns_count{op=\"Resize\"}"),
              3.0);
    EXPECT_EQ(promValue(samples, "lotus_app_latency_ns_sum{op=\"Resize\"}"),
              5'020.0);
    // Bucket series are cumulative and end at +Inf == count.
    const std::string inf_series =
        "lotus_app_latency_ns_bucket{op=\"Resize\",le=\"+Inf\"}";
    EXPECT_EQ(promValue(samples, inf_series), 3.0);
    double last = 0.0;
    for (const auto &sample : samples) {
        if (sample.series.find("lotus_app_latency_ns_bucket") !=
            std::string::npos) {
            EXPECT_GE(sample.value, last) << "non-cumulative bucket";
            last = sample.value;
        }
    }
    // One TYPE line per family, none repeated.
    EXPECT_NE(text.find("# TYPE lotus_app_latency_ns histogram"),
              std::string::npos);
    EXPECT_EQ(text.find("# TYPE lotus_app_latency_ns histogram"),
              text.rfind("# TYPE lotus_app_latency_ns histogram"));
}

TEST_F(MetricsTest, JsonExportRoundTripsThroughParser)
{
    MetricsRegistry registry;
    registry.counter("lotus_app_events_total")->add(11);
    registry.gauge("lotus_app_depth")->set(4);
    Histogram *hist = registry.histogram("lotus_app_latency_ns");
    for (int i = 0; i < 100; ++i)
        hist->record(1000);

    const Snapshot first = registry.snapshot();
    registry.counter("lotus_app_events_total")->add(9);
    const Snapshot second = registry.snapshot();
    const Snapshot delta = diff(second, first);

    const std::string json = toJson(second, &delta);
    const auto document = trace::detail::parseJson(json);

    const auto *schema = document.find("schema_version");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(static_cast<int>(schema->number), kJsonSchemaVersion);
    const auto *counters = document.find("counters");
    ASSERT_NE(counters, nullptr);
    EXPECT_EQ(counters->find("lotus_app_events_total")->number, 20.0);
    const auto *gauges = document.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->find("lotus_app_depth")->number, 4.0);
    const auto *histograms = document.find("histograms");
    ASSERT_NE(histograms, nullptr);
    const auto *latency = histograms->find("lotus_app_latency_ns");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->find("count")->number, 100.0);
    EXPECT_EQ(latency->find("sum")->number, 100'000.0);
    EXPECT_GE(latency->find("p50")->number, 1000.0);
    ASSERT_FALSE(latency->find("buckets")->array.empty());
    const auto *rates = document.find("rates");
    ASSERT_NE(rates, nullptr);
    EXPECT_GT(rates->find("lotus_app_events_total")->number, 0.0);
    const auto *interval = document.find("interval_ns");
    ASSERT_NE(interval, nullptr);
    EXPECT_GT(interval->number, 0.0);
}

TEST_F(MetricsTest, ReporterPublishesEndpointFileWithRates)
{
    TempDir dir("lotus_metrics_test");
    const std::string endpoint = dir.file("metrics.json");
    MetricsRegistry registry;
    Counter *counter = registry.counter("lotus_app_ticks_total");

    {
        MetricsReporterOptions options;
        options.interval = 5 * kMillisecond;
        options.json_path = endpoint;
        options.registry = &registry;
        MetricsReporter reporter(options);
        for (int i = 0; i < 20; ++i) {
            counter->add(10);
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    } // destructor emits the final tick

    ASSERT_TRUE(fileExists(endpoint));
    const auto document = trace::detail::parseJson(readFile(endpoint));
    EXPECT_EQ(
        document.find("counters")->find("lotus_app_ticks_total")->number,
        200.0);
    EXPECT_NE(document.find("rates"), nullptr);
}

TEST_F(MetricsTest, ReporterCallbackSeesDeltas)
{
    MetricsRegistry registry;
    Counter *counter = registry.counter("lotus_app_cb_total");
    std::atomic<std::uint64_t> last_total{0};
    {
        MetricsReporterOptions options;
        options.interval = 5 * kMillisecond;
        options.registry = &registry;
        options.on_tick = [&](const Snapshot &full, const Snapshot &delta) {
            last_total = full.counters.at("lotus_app_cb_total");
            EXPECT_LE(delta.counters.at("lotus_app_cb_total"),
                      full.counters.at("lotus_app_cb_total"));
        };
        MetricsReporter reporter(options);
        counter->add(77);
    }
    EXPECT_EQ(last_total.load(), 77u);
}

// ---------------------------------------------------------------------------
// End-to-end instrumentation.

class SpinDataset : public pipeline::Dataset
{
  public:
    explicit SpinDataset(std::int64_t size) : size_(size) {}
    std::int64_t size() const override { return size_; }

    pipeline::Sample
    get(std::int64_t index, pipeline::PipelineContext &ctx) const override
    {
        (void)ctx;
        pipeline::Sample sample;
        sample.data = tensor::Tensor(tensor::DType::F32, {1});
        sample.data.data<float>()[0] = static_cast<float>(index);
        sample.label = index;
        return sample;
    }

  private:
    std::int64_t size_;
};

TEST_F(MetricsTest, DataLoaderEmitsLoaderMetrics)
{
    auto &registry = MetricsRegistry::instance();
    auto dataset = std::make_shared<SpinDataset>(32);
    auto collate = std::make_shared<pipeline::StackCollate>();
    dataflow::DataLoaderOptions options;
    options.batch_size = 4;
    options.num_workers = 2;
    dataflow::DataLoader loader(dataset, collate, options);
    while (loader.next().has_value()) {
    }
    EXPECT_EQ(registry.counter("lotus_loader_batches_total")->value(), 8u);
    const auto fetch_count =
        registry
            .histogram(labeled("lotus_loader_fetch_ns", "worker", "0"))
            ->count() +
        registry
            .histogram(labeled("lotus_loader_fetch_ns", "worker", "1"))
            ->count();
    EXPECT_EQ(fetch_count, 8u);
    EXPECT_GT(registry.histogram("lotus_loader_wait_ns")->count(), 0u);
    // Queues fully drained: depth gauges return to zero.
    EXPECT_EQ(registry.gauge("lotus_loader_data_queue_depth")->value(), 0);
    EXPECT_EQ(
        registry
            .gauge(labeled("lotus_loader_index_queue_depth", "worker", "0"))
            ->value(),
        0);
    EXPECT_EQ(registry.gauge("lotus_loader_pin_cache_size")->value(), 0);
}

TEST_F(MetricsTest, ComposeEmitsPerOpHistograms)
{
    auto &registry = MetricsRegistry::instance();
    pipeline::Compose compose;
    compose.add(std::make_unique<pipeline::ToTensor>());
    Rng rng(1);
    pipeline::PipelineContext ctx;
    ctx.rng = &rng;
    for (int i = 0; i < 2; ++i) {
        pipeline::Sample sample;
        sample.image = image::synthesize(rng, 16, 16);
        compose(sample, ctx);
    }
    EXPECT_EQ(
        registry
            .histogram(labeled("lotus_pipeline_op_ns", "op", "ToTensor"))
            ->count(),
        2u);
}

TEST_F(MetricsTest, CodecEmitsDecodeMetrics)
{
    auto &registry = MetricsRegistry::instance();
    Rng rng(7);
    const auto img = image::synthesize(rng, 32, 32);
    const std::string blob = image::codec::encode(img);
    const std::uint64_t fast_before =
        registry.counter("lotus_codec_decode_fast_total")->value();
    const std::uint64_t hist_before =
        registry.histogram("lotus_codec_decode_ns")->count();
    image::codec::decode(blob);
    image::codec::decode(blob, image::codec::DecodeOptions{.reference = true});
    EXPECT_EQ(registry.counter("lotus_codec_decode_fast_total")->value(),
              fast_before + 1);
    EXPECT_EQ(
        registry.counter("lotus_codec_decode_reference_total")->value(),
        1u);
    EXPECT_EQ(registry.histogram("lotus_codec_decode_ns")->count(),
              hist_before + 2);
}

TEST_F(MetricsTest, SynchronousLoaderRecordsMainFetches)
{
    auto &registry = MetricsRegistry::instance();
    auto dataset = std::make_shared<SpinDataset>(8);
    auto collate = std::make_shared<pipeline::StackCollate>();
    dataflow::DataLoaderOptions options;
    options.batch_size = 2;
    options.num_workers = 0;
    dataflow::DataLoader loader(dataset, collate, options);
    int batches = 0;
    while (loader.next().has_value())
        ++batches;
    EXPECT_EQ(batches, 4);
    EXPECT_EQ(
        registry
            .histogram(labeled("lotus_loader_fetch_ns", "worker", "main"))
            ->count(),
        4u);
    EXPECT_EQ(registry.counter("lotus_loader_batches_total")->value(), 4u);
}

} // namespace
} // namespace lotus::metrics
