/**
 * @file
 * Unit tests for the preprocessing framework: transforms, Compose
 * instrumentation, stores, datasets, and collation.
 */

#include <gtest/gtest.h>

#include "common/files.h"
#include "image/codec/codec.h"
#include "image/synth.h"
#include "pipeline/collate.h"
#include "pipeline/compose.h"
#include "pipeline/image_folder.h"
#include "pipeline/store.h"
#include "pipeline/traced_store.h"
#include "pipeline/transforms/vision.h"
#include "pipeline/transforms/volumetric.h"
#include "pipeline/volume_dataset.h"
#include "tensor/serialize.h"

namespace lotus::pipeline {
namespace {

Sample
imageSample(int width, int height, std::uint64_t seed = 1)
{
    Rng rng(seed);
    Sample sample;
    sample.image = image::synthesize(rng, width, height);
    return sample;
}

Sample
volumeSample(std::int64_t d, std::int64_t h, std::int64_t w,
             tensor::DType dtype = tensor::DType::F32)
{
    Sample sample;
    sample.data = tensor::Tensor(dtype, {1, d, h, w});
    return sample;
}

TEST(Transforms, RandomResizedCropProducesTargetSize)
{
    RandomResizedCrop::Params params;
    params.size = 32;
    RandomResizedCrop transform(params);
    Rng rng(3);
    for (int i = 0; i < 10; ++i) {
        Sample sample = imageSample(80, 60, static_cast<std::uint64_t>(i));
        transform.apply(sample, rng);
        ASSERT_TRUE(sample.hasImage());
        EXPECT_EQ(sample.image->width(), 32);
        EXPECT_EQ(sample.image->height(), 32);
    }
}

TEST(Transforms, RandomResizedCropWorksOnTinyImages)
{
    RandomResizedCrop::Params params;
    params.size = 16;
    RandomResizedCrop transform(params);
    Rng rng(4);
    Sample sample = imageSample(8, 8);
    transform.apply(sample, rng);
    EXPECT_EQ(sample.image->width(), 16);
}

TEST(Transforms, RandomHorizontalFlipProbabilityRespected)
{
    Sample original = imageSample(10, 10);
    RandomHorizontalFlip never(0.0);
    RandomHorizontalFlip always(1.0);
    Rng rng(5);

    Sample a = original;
    never.apply(a, rng);
    EXPECT_EQ(a.image->pixel(0, 0)[0], original.image->pixel(0, 0)[0]);

    Sample b = original;
    always.apply(b, rng);
    EXPECT_EQ(b.image->pixel(0, 0)[0], original.image->pixel(9, 0)[0]);
}

TEST(Transforms, ResizeShorterEdge)
{
    Resize transform(50);
    Rng rng(6);
    Sample sample = imageSample(200, 100);
    transform.apply(sample, rng);
    EXPECT_EQ(sample.image->height(), 50);
    EXPECT_EQ(sample.image->width(), 100);
}

TEST(Transforms, ResizeRespectsMaxSize)
{
    Resize transform(100, 120);
    Rng rng(6);
    Sample sample = imageSample(400, 100);
    transform.apply(sample, rng);
    EXPECT_LE(std::max(sample.image->width(), sample.image->height()), 120);
}

TEST(Transforms, ResizeExact)
{
    Resize transform(64, 0, /*exact=*/true);
    Rng rng(6);
    Sample sample = imageSample(123, 45);
    transform.apply(sample, rng);
    EXPECT_EQ(sample.image->width(), 64);
    EXPECT_EQ(sample.image->height(), 64);
}

TEST(Transforms, ToTensorProducesChwFloatInUnitRange)
{
    ToTensor transform;
    Rng rng(7);
    Sample sample = imageSample(6, 4);
    transform.apply(sample, rng);
    EXPECT_FALSE(sample.hasImage());
    ASSERT_EQ(sample.data.shape(), (std::vector<std::int64_t>{3, 4, 6}));
    EXPECT_EQ(sample.data.dtype(), tensor::DType::F32);
    for (std::int64_t i = 0; i < sample.data.numel(); ++i) {
        EXPECT_GE(sample.data.data<float>()[i], 0.0f);
        EXPECT_LE(sample.data.data<float>()[i], 1.0f);
    }
}

TEST(Transforms, NormalizeAfterToTensor)
{
    ToTensor to_tensor;
    Normalize normalize({0.5f, 0.5f, 0.5f}, {0.5f, 0.5f, 0.5f});
    Rng rng(8);
    Sample sample = imageSample(4, 4);
    to_tensor.apply(sample, rng);
    normalize.apply(sample, rng);
    for (std::int64_t i = 0; i < sample.data.numel(); ++i) {
        EXPECT_GE(sample.data.data<float>()[i], -1.0f);
        EXPECT_LE(sample.data.data<float>()[i], 1.0f);
    }
}

TEST(Transforms, RandBalancedCropShape)
{
    RandBalancedCrop::Params params;
    params.patch = {8, 8, 8};
    params.oversampling = 0.0;
    RandBalancedCrop transform(params);
    Rng rng(9);
    Sample sample = volumeSample(16, 20, 24);
    transform.apply(sample, rng);
    EXPECT_EQ(sample.data.shape(), (std::vector<std::int64_t>{1, 8, 8, 8}));
}

TEST(Transforms, RandBalancedCropForegroundCentering)
{
    RandBalancedCrop::Params params;
    params.patch = {4, 4, 4};
    params.oversampling = 1.0; // always take the foreground path
    params.foreground_threshold = 200.0f;
    RandBalancedCrop transform(params);
    Rng rng(10);
    Sample sample = volumeSample(12, 12, 12);
    // Single bright voxel in a corner region.
    sample.data.data<float>()[(2 * 12 + 3) * 12 + 4] = 255.0f;
    transform.apply(sample, rng);
    ASSERT_EQ(sample.data.shape(),
              (std::vector<std::int64_t>{1, 4, 4, 4}));
    // The bright voxel must be inside the crop.
    bool found = false;
    for (std::int64_t i = 0; i < sample.data.numel(); ++i) {
        if (sample.data.data<float>()[i] == 255.0f)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Transforms, RandBalancedCropPadsUndersizedVolume)
{
    // A volume smaller than the patch is zero-padded: the output
    // shape is always (C, patch) so batches stack (real loaders
    // guarantee a fixed crop size).
    RandBalancedCrop::Params params;
    params.patch = {8, 8, 8};
    params.oversampling = 0.0;
    RandBalancedCrop transform(params);
    Rng rng(11);
    Sample sample = volumeSample(4, 5, 6);
    for (std::int64_t i = 0; i < sample.data.numel(); ++i)
        sample.data.data<float>()[i] = 3.0f;
    transform.apply(sample, rng);
    ASSERT_EQ(sample.data.shape(), (std::vector<std::int64_t>{1, 8, 8, 8}));
    // Original voxels survive at the origin corner; padding is zero.
    EXPECT_EQ(sample.data.data<float>()[0], 3.0f);
    EXPECT_EQ(sample.data.data<float>()[sample.data.numel() - 1], 0.0f);
    double sum = 0.0;
    for (std::int64_t i = 0; i < sample.data.numel(); ++i)
        sum += sample.data.data<float>()[i];
    EXPECT_DOUBLE_EQ(sum, 3.0 * 4 * 5 * 6);
}

TEST(Transforms, RandomFlipKeepsShape)
{
    RandomFlip transform(1.0);
    Rng rng(12);
    Sample sample = volumeSample(3, 4, 5);
    sample.data.data<float>()[0] = 7.0f;
    transform.apply(sample, rng);
    EXPECT_EQ(sample.data.shape(), (std::vector<std::int64_t>{1, 3, 4, 5}));
    // Flipping every axis moves element 0 to the far corner.
    EXPECT_EQ(sample.data.data<float>()[sample.data.numel() - 1], 7.0f);
}

TEST(Transforms, CastConvertsDtype)
{
    Cast to_f32(tensor::DType::F32);
    Rng rng(13);
    Sample sample = volumeSample(2, 2, 2, tensor::DType::U8);
    sample.data.data<std::uint8_t>()[0] = 200;
    to_f32.apply(sample, rng);
    EXPECT_EQ(sample.data.dtype(), tensor::DType::F32);
    EXPECT_FLOAT_EQ(sample.data.data<float>()[0], 200.0f);
    // Idempotent when already at the target dtype.
    to_f32.apply(sample, rng);
    EXPECT_EQ(sample.data.dtype(), tensor::DType::F32);
}

TEST(Transforms, BrightnessAndNoiseRespectProbability)
{
    RandomBrightnessAugmentation never(0.3, 0.0);
    GaussianNoise never_noise(0.0f, 5.0f, 0.0);
    Rng rng(14);
    Sample sample = volumeSample(2, 2, 2);
    sample.data.data<float>()[0] = 100.0f;
    never.apply(sample, rng);
    never_noise.apply(sample, rng);
    EXPECT_FLOAT_EQ(sample.data.data<float>()[0], 100.0f);

    RandomBrightnessAugmentation always(0.3, 1.0);
    always.apply(sample, rng);
    EXPECT_NE(sample.data.data<float>()[0], 100.0f);
}

TEST(Compose, AppliesInOrderAndLogs)
{
    std::vector<TransformPtr> transforms;
    transforms.push_back(std::make_unique<ToTensor>());
    transforms.push_back(std::make_unique<Normalize>(
        std::vector<float>{0.0f, 0.0f, 0.0f},
        std::vector<float>{1.0f, 1.0f, 1.0f}));
    Compose compose(std::move(transforms));
    EXPECT_EQ(compose.size(), 2u);
    EXPECT_EQ(compose.names()[0], "ToTensor");

    trace::TraceLogger logger;
    Rng rng(15);
    PipelineContext ctx;
    ctx.logger = &logger;
    ctx.pid = 77;
    ctx.batch_id = 5;
    ctx.sample_index = 3;
    ctx.rng = &rng;

    Sample sample = imageSample(4, 4);
    compose(sample, ctx);
    const auto records = logger.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].kind, trace::RecordKind::TransformOp);
    EXPECT_EQ(records[0].op_name, "ToTensor");
    EXPECT_EQ(records[1].op_name, "Normalize");
    EXPECT_EQ(records[0].batch_id, 5);
    EXPECT_EQ(records[0].pid, 77u);
    EXPECT_EQ(records[0].sample_index, 3);
    EXPECT_GE(records[0].duration, 0);
}

TEST(Compose, NoLoggerMeansNoRecordsButStillTransforms)
{
    std::vector<TransformPtr> transforms;
    transforms.push_back(std::make_unique<ToTensor>());
    Compose compose(std::move(transforms));
    Rng rng(16);
    PipelineContext ctx;
    ctx.rng = &rng;
    Sample sample = imageSample(4, 4);
    compose(sample, ctx);
    EXPECT_FALSE(sample.hasImage());
}

TEST(Store, InMemoryRoundTrip)
{
    InMemoryStore store;
    EXPECT_EQ(store.add("alpha"), 0);
    EXPECT_EQ(store.add("beta!"), 1);
    EXPECT_EQ(store.size(), 2);
    EXPECT_EQ(store.read(1), "beta!");
    EXPECT_EQ(store.blobSize(0), 5u);
    EXPECT_EQ(store.totalBytes(), 10u);
}

TEST(Store, ModelledIoLatencyApplies)
{
    InMemoryStore slow(2 * kMillisecond, 0.0);
    slow.add("x");
    const auto &clock = SteadyClock::instance();
    const TimeNs before = clock.now();
    slow.read(0);
    EXPECT_GE(clock.now() - before, 2 * kMillisecond);
}

TEST(Store, DiskStoreReadsFiles)
{
    TempDir dir("lotus-store");
    writeFile(dir.file("a.bin"), "AAA");
    writeFile(dir.file("b.bin"), "BB");
    DiskStore store({dir.file("a.bin"), dir.file("b.bin")});
    EXPECT_EQ(store.size(), 2);
    EXPECT_EQ(store.read(0), "AAA");
    EXPECT_EQ(store.blobSize(1), 2u);
}

TEST(TracedStore, CountsSuccessfulReadsAndForwards)
{
    auto inner = std::make_shared<InMemoryStore>();
    inner->add("alpha");
    inner->add("beta!!");
    TracedStore store(inner);
    EXPECT_EQ(store.size(), 2);
    EXPECT_EQ(store.blobSize(1), 6u);
    EXPECT_EQ(store.read(0), "alpha");
    EXPECT_EQ(store.read(1), "beta!!");
    auto result = store.tryRead(0);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(store.reads(), 3u);
    EXPECT_EQ(store.bytesRead(), 5u + 6u + 5u);
}

TEST(TracedStore, EmitsCorrelatedIoEventOnlyInsideScope)
{
    auto inner = std::make_shared<InMemoryStore>();
    inner->add("payload");
    TracedStore store(inner);

    trace::TraceLogger logger;
    PipelineContext ctx;
    ctx.logger = &logger;
    ctx.pid = 42;
    ctx.batch_id = 7;
    ctx.sample_index = 3;

    // Outside any IoTraceScope: counted, but no trace record.
    EXPECT_EQ(currentIoContext(), nullptr);
    store.read(0);
    EXPECT_TRUE(logger.records().empty());

    {
        IoTraceScope scope(&ctx);
        EXPECT_EQ(currentIoContext(), &ctx);
        store.read(0);
    }
    EXPECT_EQ(currentIoContext(), nullptr);

    const auto records = logger.records();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].kind, trace::RecordKind::IoEvent);
    EXPECT_EQ(records[0].op_name, "io:7");
    EXPECT_EQ(records[0].batch_id, 7);
    EXPECT_EQ(records[0].pid, 42u);
    EXPECT_EQ(records[0].sample_index, 3);
    EXPECT_GE(records[0].duration, 0);
    EXPECT_EQ(store.reads(), 2u);
}

TEST(TracedStore, ScopesNest)
{
    PipelineContext outer_ctx, inner_ctx;
    IoTraceScope outer(&outer_ctx);
    EXPECT_EQ(currentIoContext(), &outer_ctx);
    {
        IoTraceScope inner(&inner_ctx);
        EXPECT_EQ(currentIoContext(), &inner_ctx);
    }
    EXPECT_EQ(currentIoContext(), &outer_ctx);
}

TEST(TracedStore, FailedTryReadNotCounted)
{
    auto inner =
        std::make_shared<DiskStore>(std::vector<std::string>{
            "/nonexistent/lotus-traced-store-test.bin"});
    TracedStore store(inner);
    trace::TraceLogger logger;
    PipelineContext ctx;
    ctx.logger = &logger;
    IoTraceScope scope(&ctx);
    auto result = store.tryRead(0);
    EXPECT_FALSE(result.ok());
    // Failed reads are not latency observations: error accounting
    // lives in lotus_loader_sample_errors_total instead.
    EXPECT_EQ(store.reads(), 0u);
    EXPECT_EQ(store.bytesRead(), 0u);
    EXPECT_TRUE(logger.records().empty());
}

TEST(ImageFolder, LoaderOpLoggedAndDecoded)
{
    auto store = std::make_shared<InMemoryStore>();
    Rng synth_rng(17);
    image::Image img = image::synthesize(synth_rng, 24, 18);
    store->add(image::codec::encode(img));

    std::vector<TransformPtr> transforms;
    transforms.push_back(std::make_unique<ToTensor>());
    auto dataset = ImageFolderDataset(
        store, std::make_shared<Compose>(std::move(transforms)), 10);

    trace::TraceLogger logger;
    Rng rng(18);
    PipelineContext ctx;
    ctx.logger = &logger;
    ctx.rng = &rng;
    ctx.batch_id = 0;
    ctx.sample_index = 0;
    const Sample sample = dataset.get(0, ctx);
    EXPECT_EQ(sample.label, 0);
    ASSERT_EQ(sample.data.shape(), (std::vector<std::int64_t>{3, 18, 24}));

    const auto records = logger.records();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].op_name, "Loader");
    EXPECT_EQ(records[1].op_name, "ToTensor");
}

TEST(VolumeDataset, LoadsSerializedTensors)
{
    auto store = std::make_shared<InMemoryStore>();
    tensor::Tensor volume(tensor::DType::U8, {1, 4, 4, 4});
    volume.data<std::uint8_t>()[7] = 200;
    store->add(tensor::toBytes(volume));

    auto dataset =
        VolumeDataset(store, std::make_shared<Compose>());
    trace::TraceLogger logger;
    Rng rng(19);
    PipelineContext ctx;
    ctx.logger = &logger;
    ctx.rng = &rng;
    const Sample sample = dataset.get(0, ctx);
    EXPECT_EQ(sample.data.shape(),
              (std::vector<std::int64_t>{1, 4, 4, 4}));
    EXPECT_EQ(sample.data.data<std::uint8_t>()[7], 200);
    EXPECT_EQ(logger.records().size(), 1u); // just the Loader op
}

TEST(Collate, StackCombinesAndLabels)
{
    std::vector<Sample> samples(3);
    for (int i = 0; i < 3; ++i) {
        samples[static_cast<std::size_t>(i)].data =
            tensor::Tensor(tensor::DType::F32, {2, 2});
        samples[static_cast<std::size_t>(i)].label = 10 + i;
    }
    StackCollate collate;
    const Batch batch = collate.collate(std::move(samples));
    EXPECT_EQ(batch.size(), 3);
    EXPECT_EQ(batch.data.shape(), (std::vector<std::int64_t>{3, 2, 2}));
    EXPECT_EQ(batch.labels[2], 12);
}

TEST(Collate, PadCollateGrowsToMaxAndDivisor)
{
    std::vector<Sample> samples(2);
    samples[0].data = tensor::Tensor(tensor::DType::F32, {3, 10, 20});
    samples[1].data = tensor::Tensor(tensor::DType::F32, {3, 18, 12});
    samples[0].data.data<float>()[0] = 5.0f;
    PadCollate collate(16);
    const Batch batch = collate.collate(std::move(samples));
    // Max (18, 20) padded to divisor 16 -> (32, 32).
    EXPECT_EQ(batch.data.shape(),
              (std::vector<std::int64_t>{2, 3, 32, 32}));
    EXPECT_FLOAT_EQ(batch.data.data<float>()[0], 5.0f);
}

TEST(Collate, PadCollateExactMaxWhenNoDivisor)
{
    std::vector<Sample> samples(2);
    samples[0].data = tensor::Tensor(tensor::DType::U8, {1, 4, 8});
    samples[1].data = tensor::Tensor(tensor::DType::U8, {1, 6, 2});
    samples[1].data.data<std::uint8_t>()[0] = 9;
    PadCollate collate(0);
    const Batch batch = collate.collate(std::move(samples));
    EXPECT_EQ(batch.data.shape(), (std::vector<std::int64_t>{2, 1, 6, 8}));
    // Sample 1's (0,0,0) lands at batch position [1][0][0][0].
    EXPECT_EQ(batch.data.data<std::uint8_t>()[6 * 8], 9);
}

} // namespace
} // namespace lotus::pipeline
