/**
 * @file
 * RemoteStore suite: the latency/bandwidth model (RTT, per-connection
 * throughput, bounded in-flight slots), tryReadMany range coalescing
 * (runs, gap tolerance, byte cap, request-order results), deadline
 * misses as retryable kTimeout, and decorator composition —
 * TracedStore(RemoteStore) byte/latency accounting with per-request
 * IoEvent correlation, FaultyStore(RemoteStore) error paths through
 * the default per-index fallback.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"
#include "metrics/metrics.h"
#include "pipeline/faulty_store.h"
#include "pipeline/remote_store.h"
#include "pipeline/sample.h"
#include "pipeline/store.h"
#include "pipeline/traced_store.h"
#include "trace/logger.h"

namespace lotus {
namespace {

using pipeline::BlobReadRequest;
using pipeline::FaultyStore;
using pipeline::FaultyStoreOptions;
using pipeline::InMemoryStore;
using pipeline::RemoteStore;
using pipeline::RemoteStoreOptions;
using pipeline::TracedStore;

/** Inner store with @p count blobs of @p bytes each ("blob-<i>..."
 *  padded), no modelled local latency. */
std::shared_ptr<InMemoryStore>
makeStore(int count, std::size_t bytes = 64)
{
    auto store = std::make_shared<InMemoryStore>();
    for (int i = 0; i < count; ++i) {
        std::string blob = strFormat("blob-%04d-", i);
        blob.resize(bytes, 'x');
        store->add(std::move(blob));
    }
    return store;
}

std::vector<BlobReadRequest>
requestsFor(const std::vector<std::int64_t> &indices)
{
    std::vector<BlobReadRequest> requests;
    for (const auto index : indices) {
        BlobReadRequest request;
        request.index = index;
        request.batch_id = index / 4;
        request.sample_index = index;
        requests.push_back(request);
    }
    return requests;
}

TEST(RemoteStore, ServesExactBytesAndPaysRtt)
{
    auto inner = makeStore(4);
    RemoteStoreOptions options;
    options.rtt = 2 * kMillisecond;
    options.bytes_per_ns = 0.0; // unlimited bandwidth: RTT only
    RemoteStore remote(inner, options);

    const TimeNs start = SteadyClock::instance().now();
    EXPECT_EQ(remote.read(2), inner->read(2));
    const TimeNs elapsed = SteadyClock::instance().now() - start;
    EXPECT_GE(elapsed, options.rtt);
    EXPECT_EQ(remote.roundTrips(), 1u);
    EXPECT_EQ(remote.coalescedReads(), 0u);
    EXPECT_EQ(remote.bytesTransferred(), inner->blobSize(2));
    EXPECT_EQ(remote.size(), inner->size());
    EXPECT_EQ(remote.blobSize(1), inner->blobSize(1));
}

TEST(RemoteStore, BandwidthCapExtendsTransfers)
{
    auto inner = makeStore(1, /*bytes=*/4 << 20);
    RemoteStoreOptions options;
    options.rtt = 0;
    options.bytes_per_ns = 1.0; // 1 GB/s -> 4 MiB takes ~4.2 ms
    RemoteStore remote(inner, options);

    const TimeNs start = SteadyClock::instance().now();
    EXPECT_TRUE(remote.tryRead(0).ok());
    const TimeNs elapsed = SteadyClock::instance().now() - start;
    EXPECT_GE(elapsed, static_cast<TimeNs>(4 << 20));
}

TEST(RemoteStore, CoalescesAdjacentRunsIntoSingleRoundTrips)
{
    auto inner = makeStore(32);
    RemoteStoreOptions options;
    options.rtt = kMillisecond;
    options.bytes_per_ns = 0.0;
    RemoteStore remote(inner, options);

    // Three runs under strict adjacency: {0,1,2}, {10,11}, {20}.
    const std::vector<std::int64_t> indices = {0, 1, 2, 10, 11, 20};
    const TimeNs start = SteadyClock::instance().now();
    auto blobs = remote.tryReadMany(requestsFor(indices));
    const TimeNs elapsed = SteadyClock::instance().now() - start;

    ASSERT_EQ(blobs.size(), indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(blobs[i].value(), inner->read(indices[i]))
            << "slot " << i;
    EXPECT_EQ(remote.roundTrips(), 3u);
    EXPECT_EQ(remote.coalescedReads(), 5u); // 3 + 2; the singleton no
    EXPECT_EQ(remote.bytesTransferred(),
              6 * inner->blobSize(0)); // no gap blobs in any run
    // Serial caller: three modelled round trips, not six.
    EXPECT_GE(elapsed, 3 * options.rtt);
    EXPECT_LT(elapsed, 6 * options.rtt);
}

TEST(RemoteStore, ResultsComeBackInRequestOrderUnsorted)
{
    auto inner = makeStore(16);
    RemoteStoreOptions options;
    options.rtt = 0;
    options.bytes_per_ns = 0.0;
    RemoteStore remote(inner, options);

    const std::vector<std::int64_t> indices = {5, 0, 3, 1, 4, 2};
    auto blobs = remote.tryReadMany(requestsFor(indices));
    ASSERT_EQ(blobs.size(), indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        EXPECT_EQ(blobs[i].value(), inner->read(indices[i]))
            << "slot " << i;
    // {5,0,3,1,4,2} sorts to the single adjacent run [0,5].
    EXPECT_EQ(remote.roundTrips(), 1u);
    EXPECT_EQ(remote.coalescedReads(), 6u);
}

TEST(RemoteStore, GapToleranceFetchesDeadBytes)
{
    auto inner = makeStore(8, /*bytes=*/100);
    RemoteStoreOptions options;
    options.rtt = 0;
    options.bytes_per_ns = 0.0;
    options.max_coalesce_gap = 1;
    RemoteStore remote(inner, options);

    // 0 and 2 coalesce across the unrequested gap blob 1; its bytes
    // ride the wire anyway. 5 is beyond the window from 2.
    auto blobs = remote.tryReadMany(requestsFor({0, 2, 5}));
    ASSERT_EQ(blobs.size(), 3u);
    EXPECT_EQ(blobs[0].value(), inner->read(0));
    EXPECT_EQ(blobs[1].value(), inner->read(2));
    EXPECT_EQ(blobs[2].value(), inner->read(5));
    EXPECT_EQ(remote.roundTrips(), 2u);
    EXPECT_EQ(remote.coalescedReads(), 2u); // {0,2}; {5} is alone
    EXPECT_EQ(remote.bytesTransferred(), 400u); // blobs 0,1,2 + 5
}

TEST(RemoteStore, ByteCapSplitsRuns)
{
    auto inner = makeStore(8, /*bytes=*/1000);
    RemoteStoreOptions options;
    options.rtt = 0;
    options.bytes_per_ns = 0.0;
    options.max_coalesced_bytes = 2500; // two blobs fit, three do not
    RemoteStore remote(inner, options);

    auto blobs = remote.tryReadMany(requestsFor({0, 1, 2, 3}));
    ASSERT_EQ(blobs.size(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(blobs[static_cast<std::size_t>(i)].ok());
    EXPECT_EQ(remote.roundTrips(), 2u); // {0,1} and {2,3}
    EXPECT_EQ(remote.bytesTransferred(), 4000u);
}

TEST(RemoteStore, InflightSlotsBoundConcurrency)
{
    auto inner = makeStore(8);
    RemoteStoreOptions options;
    options.rtt = 4 * kMillisecond;
    options.bytes_per_ns = 0.0;
    options.max_inflight = 1;
    RemoteStore remote(inner, options);

    // Two concurrent reads through one connection slot serialize:
    // total wall is two RTTs even though both threads sleep.
    const TimeNs start = SteadyClock::instance().now();
    std::thread other([&] { EXPECT_TRUE(remote.tryRead(0).ok()); });
    EXPECT_TRUE(remote.tryRead(1).ok());
    other.join();
    const TimeNs serialized = SteadyClock::instance().now() - start;
    EXPECT_GE(serialized, 2 * options.rtt);

    // With two slots the same pair overlaps.
    options.max_inflight = 2;
    RemoteStore wide(inner, options);
    const TimeNs wide_start = SteadyClock::instance().now();
    std::thread wide_other([&] { EXPECT_TRUE(wide.tryRead(0).ok()); });
    EXPECT_TRUE(wide.tryRead(1).ok());
    wide_other.join();
    const TimeNs overlapped = SteadyClock::instance().now() - wide_start;
    EXPECT_LT(overlapped, 2 * options.rtt);
}

TEST(RemoteStore, DeadlineMissesFailTheRunWithRetryableTimeout)
{
    auto inner = makeStore(8);
    RemoteStoreOptions options;
    options.rtt = 5 * kMillisecond;
    options.bytes_per_ns = 0.0;
    options.deadline = kMillisecond; // every request misses
    RemoteStore remote(inner, options);

    Result<std::string> blob = remote.tryRead(0);
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code, ErrorCode::kTimeout);
    EXPECT_TRUE(errorIsTransient(blob.error().code));
    EXPECT_NE(blob.error().message.find("deadline"), std::string::npos);
    EXPECT_EQ(remote.timeouts(), 1u);
    EXPECT_EQ(remote.roundTrips(), 0u);

    // A coalesced run misses as a unit: every slot fails.
    auto blobs = remote.tryReadMany(requestsFor({2, 3, 4}));
    ASSERT_EQ(blobs.size(), 3u);
    for (const auto &result : blobs) {
        ASSERT_FALSE(result.ok());
        EXPECT_EQ(result.error().code, ErrorCode::kTimeout);
    }
    EXPECT_EQ(remote.timeouts(), 4u);
    EXPECT_EQ(remote.bytesTransferred(), 0u);
}

TEST(RemoteStore, GenerousDeadlineDoesNotFire)
{
    auto inner = makeStore(4);
    RemoteStoreOptions options;
    options.rtt = kMillisecond;
    options.bytes_per_ns = 0.0;
    options.deadline = 500 * kMillisecond;
    RemoteStore remote(inner, options);
    EXPECT_TRUE(remote.tryRead(0).ok());
    EXPECT_EQ(remote.timeouts(), 0u);
    EXPECT_EQ(remote.roundTrips(), 1u);
}

TEST(RemoteStore, ValidatesOptionsFatally)
{
    auto inner = makeStore(2);
    RemoteStoreOptions bad_inflight;
    bad_inflight.max_inflight = 0;
    EXPECT_EXIT(RemoteStore(inner, bad_inflight),
                ::testing::ExitedWithCode(1), "max_inflight");
    RemoteStoreOptions bad_rtt;
    bad_rtt.rtt = -1;
    EXPECT_EXIT(RemoteStore(inner, bad_rtt), ::testing::ExitedWithCode(1),
                "rtt");
}

TEST(BlobStore, DefaultTryReadManyMatchesPerIndexReads)
{
    // Stores without a batched override serve tryReadMany through the
    // per-index fallback: same bytes, per-slot errors.
    auto store = makeStore(8);
    auto blobs = store->tryReadMany(requestsFor({3, 0, 7}));
    ASSERT_EQ(blobs.size(), 3u);
    EXPECT_EQ(blobs[0].value(), store->read(3));
    EXPECT_EQ(blobs[1].value(), store->read(0));
    EXPECT_EQ(blobs[2].value(), store->read(7));
}

TEST(StoreComposition, TracedOverRemoteAccountsCoalescedReads)
{
    metrics::ScopedEnable enable;
    auto &registry = metrics::MetricsRegistry::instance();
    registry.reset();

    auto inner = makeStore(16, /*bytes=*/128);
    RemoteStoreOptions options;
    options.rtt = kMillisecond;
    options.bytes_per_ns = 0.0;
    auto remote = std::make_shared<RemoteStore>(inner, options);
    TracedStore traced(remote);

    auto blobs = traced.tryReadMany(requestsFor({4, 5, 6}));
    ASSERT_EQ(blobs.size(), 3u);
    for (const auto &blob : blobs)
        EXPECT_TRUE(blob.ok());

    // The batch reached the remote store whole (one round trip), and
    // the tracer accounted every delivered blob individually.
    EXPECT_EQ(remote->roundTrips(), 1u);
    EXPECT_EQ(traced.reads(), 3u);
    EXPECT_EQ(traced.bytesRead(), 3 * 128u);
    EXPECT_EQ(registry.histogram(pipeline::kStoreReadNsMetric)->count(),
              3u);
    EXPECT_EQ(registry.histogram(pipeline::kStoreReadBytesMetric)->count(),
              3u);
    registry.reset();
}

TEST(StoreComposition, TracedOverRemoteStampsPerRequestCorrelation)
{
    trace::TraceLogger logger;
    pipeline::PipelineContext ctx;
    ctx.logger = &logger;
    ctx.pid = 77;
    ctx.batch_id = -1;      // ambient values must be overridden
    ctx.sample_index = -1;  // by the per-request correlation

    auto inner = makeStore(16, /*bytes=*/64);
    RemoteStoreOptions options;
    options.rtt = 0;
    options.bytes_per_ns = 0.0;
    auto remote = std::make_shared<RemoteStore>(inner, options);
    TracedStore traced(remote);

    {
        pipeline::IoTraceScope scope(&ctx);
        auto blobs = traced.tryReadMany(requestsFor({8, 9, 10}));
        ASSERT_EQ(blobs.size(), 3u);
    }

    int io_events = 0;
    for (const auto &record : logger.records()) {
        if (record.kind != trace::RecordKind::IoEvent)
            continue;
        ++io_events;
        // requestsFor: batch_id = index / 4, sample_index = index.
        const std::int64_t index = record.sample_index;
        EXPECT_GE(index, 8);
        EXPECT_LE(index, 10);
        EXPECT_EQ(record.batch_id, index / 4);
        EXPECT_EQ(record.pid, 77u);
        EXPECT_EQ(record.op_name, "io:64");
    }
    EXPECT_EQ(io_events, 3);
}

TEST(StoreComposition, FaultyOverRemoteFailsPerSlot)
{
    auto inner = makeStore(8);
    RemoteStoreOptions options;
    options.rtt = 0;
    options.bytes_per_ns = 0.0;
    auto remote = std::make_shared<RemoteStore>(inner, options);
    auto faulty =
        std::make_shared<FaultyStore>(remote, FaultyStoreOptions{});
    faulty->inject(2, FaultyStore::Fault::kIoError);

    // FaultyStore has no batched override: the default fallback reads
    // per index through the remote model, so each surviving request is
    // its own round trip. The faulted slot short-circuits in the fault
    // layer and never reaches the remote at all.
    auto blobs = faulty->tryReadMany(requestsFor({1, 2, 3}));
    ASSERT_EQ(blobs.size(), 3u);
    EXPECT_TRUE(blobs[0].ok());
    ASSERT_FALSE(blobs[1].ok());
    EXPECT_EQ(blobs[1].error().code, ErrorCode::kIoError);
    EXPECT_TRUE(blobs[2].ok());
    EXPECT_EQ(remote->roundTrips(), 2u);
    EXPECT_EQ(remote->coalescedReads(), 0u);
}

TEST(StoreComposition, FaultyOverRemoteTimeoutWinsOverFault)
{
    // With both decorations active, the remote deadline fires first:
    // the fault layer sees (and passes through) the kTimeout error.
    auto inner = makeStore(4);
    RemoteStoreOptions options;
    options.rtt = 5 * kMillisecond;
    options.bytes_per_ns = 0.0;
    options.deadline = kMillisecond;
    auto remote = std::make_shared<RemoteStore>(inner, options);
    FaultyStoreOptions fault_options;
    fault_options.transient_failures = 1;
    auto faulty = std::make_shared<FaultyStore>(remote, fault_options);
    faulty->inject(0, FaultyStore::Fault::kIoError);

    Result<std::string> blob = faulty->tryRead(1); // unfaulted index
    ASSERT_FALSE(blob.ok());
    EXPECT_EQ(blob.error().code, ErrorCode::kTimeout);
}

} // namespace
} // namespace lotus
