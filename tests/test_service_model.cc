/**
 * @file
 * Unit tests for the DES service-time model and its calibration from
 * real LotusTrace records.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/service_model.h"

namespace lotus::sim {
namespace {

TEST(ServiceModel, LogNormalDrawMatchesMoments)
{
    Rng rng(1);
    const TimeNs mean = 5 * kMillisecond;
    const double cv = 0.5;
    double sum = 0.0, sum_sq = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        const double v = static_cast<double>(drawLogNormal(mean, cv, rng));
        EXPECT_GT(v, 0.0);
        sum += v;
        sum_sq += v * v;
    }
    const double m = sum / n;
    const double sd = std::sqrt(sum_sq / n - m * m);
    EXPECT_NEAR(m / static_cast<double>(mean), 1.0, 0.03);
    EXPECT_NEAR(sd / m, cv, 0.05);
}

TEST(ServiceModel, ZeroCvIsDeterministic)
{
    Rng rng(2);
    EXPECT_EQ(drawLogNormal(1000, 0.0, rng), 1000);
    EXPECT_EQ(drawLogNormal(0, 0.5, rng), 0);
}

TEST(ServiceModel, PresetsMatchTableTwoMagnitudes)
{
    const auto ic = ServiceModel::imageClassification();
    ASSERT_EQ(ic.per_sample_ops.size(), 5u);
    EXPECT_EQ(ic.per_sample_ops[0].name, "Loader");
    EXPECT_NEAR(toMs(ic.per_sample_ops[0].mean), 4.76, 0.01);
    EXPECT_NEAR(toMs(ic.meanSampleTime()), 6.48, 0.05);

    const auto is = ServiceModel::imageSegmentation();
    ASSERT_EQ(is.per_sample_ops.size(), 6u);
    EXPECT_EQ(is.per_sample_ops[1].name, "RandBalancedCrop");
    EXPECT_GT(is.per_sample_ops[1].cv, 1.0); // heavy tail

    const auto od = ServiceModel::objectDetection();
    ASSERT_EQ(od.per_sample_ops.size(), 5u);
    EXPECT_NEAR(toMs(od.per_sample_ops[1].mean), 9.43, 0.01);
}

TEST(ServiceModel, DrawOpTimeUsesOpIndex)
{
    const auto model = ServiceModel::imageClassification();
    Rng rng(3);
    double loader_sum = 0.0, flip_sum = 0.0;
    for (int i = 0; i < 2000; ++i) {
        loader_sum += static_cast<double>(model.drawOpTime(0, rng));
        flip_sum += static_cast<double>(model.drawOpTime(2, rng));
    }
    EXPECT_GT(loader_sum / flip_sum, 20.0); // 4.76 ms vs 0.06 ms
}

TEST(ServiceModel, CollateScalesWithBatchSize)
{
    const auto model = ServiceModel::imageClassification();
    Rng rng(4);
    double small = 0.0, large = 0.0;
    for (int i = 0; i < 2000; ++i) {
        small += static_cast<double>(model.drawCollateTime(16, rng));
        large += static_cast<double>(model.drawCollateTime(128, rng));
    }
    EXPECT_NEAR(large / small, 8.0, 0.5);
}

TEST(ServiceModel, CalibrateRecoversRecordedMoments)
{
    // Build synthetic [T3] records: op A at exactly 2 ms, op B at
    // 4 ms, plus Collate at 10 ms per batch of 4.
    std::vector<trace::TraceRecord> records;
    for (int i = 0; i < 200; ++i) {
        trace::TraceRecord a;
        a.kind = trace::RecordKind::TransformOp;
        a.op_name = "A";
        a.duration = 2 * kMillisecond;
        records.push_back(a);
        trace::TraceRecord b = a;
        b.op_name = "B";
        b.duration = 4 * kMillisecond;
        records.push_back(b);
    }
    for (int i = 0; i < 50; ++i) {
        trace::TraceRecord c;
        c.kind = trace::RecordKind::TransformOp;
        c.op_name = "Collate";
        c.duration = 10 * kMillisecond;
        records.push_back(c);
    }
    const auto model = ServiceModel::calibrate(records, 4);
    ASSERT_EQ(model.per_sample_ops.size(), 2u);
    EXPECT_EQ(model.per_sample_ops[0].name, "A");
    EXPECT_EQ(model.per_sample_ops[0].mean, 2 * kMillisecond);
    EXPECT_NEAR(model.per_sample_ops[0].cv, 0.0, 1e-9);
    EXPECT_EQ(model.per_sample_ops[1].mean, 4 * kMillisecond);
    // Collate normalized to per-sample share.
    EXPECT_EQ(model.collate.mean, 10 * kMillisecond / 4);
}

TEST(ServiceModel, CalibrateIgnoresNonOpRecords)
{
    std::vector<trace::TraceRecord> records;
    trace::TraceRecord op;
    op.kind = trace::RecordKind::TransformOp;
    op.op_name = "X";
    op.duration = kMillisecond;
    records.push_back(op);
    trace::TraceRecord wait;
    wait.kind = trace::RecordKind::BatchWait;
    wait.duration = 100 * kMillisecond;
    records.push_back(wait);
    const auto model = ServiceModel::calibrate(records, 1);
    ASSERT_EQ(model.per_sample_ops.size(), 1u);
    EXPECT_EQ(model.per_sample_ops[0].name, "X");
}

} // namespace
} // namespace lotus::sim
