# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_map_capture "/root/repo/build/tools/lotus_map_capture" "660" "10" "0.75")
set_tests_properties(tool_map_capture PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_analyze_usage "/root/repo/build/tools/lotus_analyze")
set_tests_properties(tool_analyze_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_viz_usage "/root/repo/build/tools/lotus_viz")
set_tests_properties(tool_viz_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
