# Empty compiler generated dependencies file for lotus_viz.
# This may be replaced when dependencies are built.
