file(REMOVE_RECURSE
  "CMakeFiles/lotus_viz.dir/lotus_viz.cc.o"
  "CMakeFiles/lotus_viz.dir/lotus_viz.cc.o.d"
  "lotus_viz"
  "lotus_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
