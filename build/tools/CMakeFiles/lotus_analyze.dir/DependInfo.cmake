
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/lotus_analyze.cc" "tools/CMakeFiles/lotus_analyze.dir/lotus_analyze.cc.o" "gcc" "tools/CMakeFiles/lotus_analyze.dir/lotus_analyze.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lotus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lotus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lotus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcount/CMakeFiles/lotus_hwcount.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
