# Empty dependencies file for lotus_analyze.
# This may be replaced when dependencies are built.
