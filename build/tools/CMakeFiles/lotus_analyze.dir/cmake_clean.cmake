file(REMOVE_RECURSE
  "CMakeFiles/lotus_analyze.dir/lotus_analyze.cc.o"
  "CMakeFiles/lotus_analyze.dir/lotus_analyze.cc.o.d"
  "lotus_analyze"
  "lotus_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
