# Empty dependencies file for lotus_map_capture.
# This may be replaced when dependencies are built.
