file(REMOVE_RECURSE
  "CMakeFiles/lotus_map_capture.dir/lotus_map_capture.cc.o"
  "CMakeFiles/lotus_map_capture.dir/lotus_map_capture.cc.o.d"
  "lotus_map_capture"
  "lotus_map_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_map_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
