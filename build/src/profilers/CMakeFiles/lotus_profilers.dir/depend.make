# Empty dependencies file for lotus_profilers.
# This may be replaced when dependencies are built.
