file(REMOVE_RECURSE
  "liblotus_profilers.a"
)
