file(REMOVE_RECURSE
  "CMakeFiles/lotus_profilers.dir/framework_tracer.cc.o"
  "CMakeFiles/lotus_profilers.dir/framework_tracer.cc.o.d"
  "CMakeFiles/lotus_profilers.dir/lotus_profiler.cc.o"
  "CMakeFiles/lotus_profilers.dir/lotus_profiler.cc.o.d"
  "CMakeFiles/lotus_profilers.dir/presets.cc.o"
  "CMakeFiles/lotus_profilers.dir/presets.cc.o.d"
  "CMakeFiles/lotus_profilers.dir/sampling_profiler.cc.o"
  "CMakeFiles/lotus_profilers.dir/sampling_profiler.cc.o.d"
  "liblotus_profilers.a"
  "liblotus_profilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_profilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
