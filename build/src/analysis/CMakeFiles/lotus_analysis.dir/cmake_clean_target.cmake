file(REMOVE_RECURSE
  "liblotus_analysis.a"
)
