file(REMOVE_RECURSE
  "CMakeFiles/lotus_analysis.dir/stats.cc.o"
  "CMakeFiles/lotus_analysis.dir/stats.cc.o.d"
  "CMakeFiles/lotus_analysis.dir/table.cc.o"
  "CMakeFiles/lotus_analysis.dir/table.cc.o.d"
  "liblotus_analysis.a"
  "liblotus_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
