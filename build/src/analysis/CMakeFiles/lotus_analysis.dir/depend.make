# Empty dependencies file for lotus_analysis.
# This may be replaced when dependencies are built.
