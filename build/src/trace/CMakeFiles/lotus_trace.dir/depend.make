# Empty dependencies file for lotus_trace.
# This may be replaced when dependencies are built.
