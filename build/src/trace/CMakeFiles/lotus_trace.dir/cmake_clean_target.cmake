file(REMOVE_RECURSE
  "liblotus_trace.a"
)
