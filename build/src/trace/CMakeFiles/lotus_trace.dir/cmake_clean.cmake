file(REMOVE_RECURSE
  "CMakeFiles/lotus_trace.dir/chrome_reader.cc.o"
  "CMakeFiles/lotus_trace.dir/chrome_reader.cc.o.d"
  "CMakeFiles/lotus_trace.dir/chrome_trace.cc.o"
  "CMakeFiles/lotus_trace.dir/chrome_trace.cc.o.d"
  "CMakeFiles/lotus_trace.dir/logger.cc.o"
  "CMakeFiles/lotus_trace.dir/logger.cc.o.d"
  "CMakeFiles/lotus_trace.dir/record.cc.o"
  "CMakeFiles/lotus_trace.dir/record.cc.o.d"
  "liblotus_trace.a"
  "liblotus_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
