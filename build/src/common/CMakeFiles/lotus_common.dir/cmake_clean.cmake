file(REMOVE_RECURSE
  "CMakeFiles/lotus_common.dir/clock.cc.o"
  "CMakeFiles/lotus_common.dir/clock.cc.o.d"
  "CMakeFiles/lotus_common.dir/files.cc.o"
  "CMakeFiles/lotus_common.dir/files.cc.o.d"
  "CMakeFiles/lotus_common.dir/logging.cc.o"
  "CMakeFiles/lotus_common.dir/logging.cc.o.d"
  "CMakeFiles/lotus_common.dir/rng.cc.o"
  "CMakeFiles/lotus_common.dir/rng.cc.o.d"
  "CMakeFiles/lotus_common.dir/strings.cc.o"
  "CMakeFiles/lotus_common.dir/strings.cc.o.d"
  "CMakeFiles/lotus_common.dir/thread_util.cc.o"
  "CMakeFiles/lotus_common.dir/thread_util.cc.o.d"
  "liblotus_common.a"
  "liblotus_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
