# Empty dependencies file for lotus_common.
# This may be replaced when dependencies are built.
