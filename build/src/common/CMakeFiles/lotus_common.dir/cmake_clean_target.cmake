file(REMOVE_RECURSE
  "liblotus_common.a"
)
