# Empty dependencies file for lotus_sim.
# This may be replaced when dependencies are built.
