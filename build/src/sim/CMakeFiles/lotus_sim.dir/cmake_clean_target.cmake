file(REMOVE_RECURSE
  "liblotus_sim.a"
)
