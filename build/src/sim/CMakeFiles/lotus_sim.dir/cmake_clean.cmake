file(REMOVE_RECURSE
  "CMakeFiles/lotus_sim.dir/gpu_model.cc.o"
  "CMakeFiles/lotus_sim.dir/gpu_model.cc.o.d"
  "CMakeFiles/lotus_sim.dir/loader_sim.cc.o"
  "CMakeFiles/lotus_sim.dir/loader_sim.cc.o.d"
  "CMakeFiles/lotus_sim.dir/service_model.cc.o"
  "CMakeFiles/lotus_sim.dir/service_model.cc.o.d"
  "CMakeFiles/lotus_sim.dir/training_loop.cc.o"
  "CMakeFiles/lotus_sim.dir/training_loop.cc.o.d"
  "liblotus_sim.a"
  "liblotus_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
