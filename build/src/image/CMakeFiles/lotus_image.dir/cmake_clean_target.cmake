file(REMOVE_RECURSE
  "liblotus_image.a"
)
