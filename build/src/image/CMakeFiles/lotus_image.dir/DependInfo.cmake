
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/codec/bitio.cc" "src/image/CMakeFiles/lotus_image.dir/codec/bitio.cc.o" "gcc" "src/image/CMakeFiles/lotus_image.dir/codec/bitio.cc.o.d"
  "/root/repo/src/image/codec/codec.cc" "src/image/CMakeFiles/lotus_image.dir/codec/codec.cc.o" "gcc" "src/image/CMakeFiles/lotus_image.dir/codec/codec.cc.o.d"
  "/root/repo/src/image/codec/color.cc" "src/image/CMakeFiles/lotus_image.dir/codec/color.cc.o" "gcc" "src/image/CMakeFiles/lotus_image.dir/codec/color.cc.o.d"
  "/root/repo/src/image/codec/dct.cc" "src/image/CMakeFiles/lotus_image.dir/codec/dct.cc.o" "gcc" "src/image/CMakeFiles/lotus_image.dir/codec/dct.cc.o.d"
  "/root/repo/src/image/geometry.cc" "src/image/CMakeFiles/lotus_image.dir/geometry.cc.o" "gcc" "src/image/CMakeFiles/lotus_image.dir/geometry.cc.o.d"
  "/root/repo/src/image/image.cc" "src/image/CMakeFiles/lotus_image.dir/image.cc.o" "gcc" "src/image/CMakeFiles/lotus_image.dir/image.cc.o.d"
  "/root/repo/src/image/resample.cc" "src/image/CMakeFiles/lotus_image.dir/resample.cc.o" "gcc" "src/image/CMakeFiles/lotus_image.dir/resample.cc.o.d"
  "/root/repo/src/image/synth.cc" "src/image/CMakeFiles/lotus_image.dir/synth.cc.o" "gcc" "src/image/CMakeFiles/lotus_image.dir/synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lotus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcount/CMakeFiles/lotus_hwcount.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lotus_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
