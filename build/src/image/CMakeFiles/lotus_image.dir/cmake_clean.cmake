file(REMOVE_RECURSE
  "CMakeFiles/lotus_image.dir/codec/bitio.cc.o"
  "CMakeFiles/lotus_image.dir/codec/bitio.cc.o.d"
  "CMakeFiles/lotus_image.dir/codec/codec.cc.o"
  "CMakeFiles/lotus_image.dir/codec/codec.cc.o.d"
  "CMakeFiles/lotus_image.dir/codec/color.cc.o"
  "CMakeFiles/lotus_image.dir/codec/color.cc.o.d"
  "CMakeFiles/lotus_image.dir/codec/dct.cc.o"
  "CMakeFiles/lotus_image.dir/codec/dct.cc.o.d"
  "CMakeFiles/lotus_image.dir/geometry.cc.o"
  "CMakeFiles/lotus_image.dir/geometry.cc.o.d"
  "CMakeFiles/lotus_image.dir/image.cc.o"
  "CMakeFiles/lotus_image.dir/image.cc.o.d"
  "CMakeFiles/lotus_image.dir/resample.cc.o"
  "CMakeFiles/lotus_image.dir/resample.cc.o.d"
  "CMakeFiles/lotus_image.dir/synth.cc.o"
  "CMakeFiles/lotus_image.dir/synth.cc.o.d"
  "liblotus_image.a"
  "liblotus_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
