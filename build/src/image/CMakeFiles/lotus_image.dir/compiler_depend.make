# Empty compiler generated dependencies file for lotus_image.
# This may be replaced when dependencies are built.
