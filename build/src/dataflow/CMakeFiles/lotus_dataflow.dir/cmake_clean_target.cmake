file(REMOVE_RECURSE
  "liblotus_dataflow.a"
)
