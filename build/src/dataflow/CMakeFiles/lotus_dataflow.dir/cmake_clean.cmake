file(REMOVE_RECURSE
  "CMakeFiles/lotus_dataflow.dir/data_loader.cc.o"
  "CMakeFiles/lotus_dataflow.dir/data_loader.cc.o.d"
  "CMakeFiles/lotus_dataflow.dir/fetcher.cc.o"
  "CMakeFiles/lotus_dataflow.dir/fetcher.cc.o.d"
  "CMakeFiles/lotus_dataflow.dir/iterable_loader.cc.o"
  "CMakeFiles/lotus_dataflow.dir/iterable_loader.cc.o.d"
  "CMakeFiles/lotus_dataflow.dir/sampler.cc.o"
  "CMakeFiles/lotus_dataflow.dir/sampler.cc.o.d"
  "liblotus_dataflow.a"
  "liblotus_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
