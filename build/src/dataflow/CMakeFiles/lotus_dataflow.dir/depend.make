# Empty dependencies file for lotus_dataflow.
# This may be replaced when dependencies are built.
