# Empty compiler generated dependencies file for lotus_dataflow.
# This may be replaced when dependencies are built.
