
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/data_loader.cc" "src/dataflow/CMakeFiles/lotus_dataflow.dir/data_loader.cc.o" "gcc" "src/dataflow/CMakeFiles/lotus_dataflow.dir/data_loader.cc.o.d"
  "/root/repo/src/dataflow/fetcher.cc" "src/dataflow/CMakeFiles/lotus_dataflow.dir/fetcher.cc.o" "gcc" "src/dataflow/CMakeFiles/lotus_dataflow.dir/fetcher.cc.o.d"
  "/root/repo/src/dataflow/iterable_loader.cc" "src/dataflow/CMakeFiles/lotus_dataflow.dir/iterable_loader.cc.o" "gcc" "src/dataflow/CMakeFiles/lotus_dataflow.dir/iterable_loader.cc.o.d"
  "/root/repo/src/dataflow/sampler.cc" "src/dataflow/CMakeFiles/lotus_dataflow.dir/sampler.cc.o" "gcc" "src/dataflow/CMakeFiles/lotus_dataflow.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/lotus_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/lotus_image.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lotus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcount/CMakeFiles/lotus_hwcount.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lotus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
