
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hwcount/collection.cc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/collection.cc.o" "gcc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/collection.cc.o.d"
  "/root/repo/src/hwcount/cost_model.cc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/cost_model.cc.o" "gcc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/cost_model.cc.o.d"
  "/root/repo/src/hwcount/counters.cc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/counters.cc.o" "gcc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/counters.cc.o.d"
  "/root/repo/src/hwcount/csv_export.cc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/csv_export.cc.o" "gcc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/csv_export.cc.o.d"
  "/root/repo/src/hwcount/kernel_id.cc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/kernel_id.cc.o" "gcc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/kernel_id.cc.o.d"
  "/root/repo/src/hwcount/perf_backend.cc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/perf_backend.cc.o" "gcc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/perf_backend.cc.o.d"
  "/root/repo/src/hwcount/registry.cc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/registry.cc.o" "gcc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/registry.cc.o.d"
  "/root/repo/src/hwcount/sampling_driver.cc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/sampling_driver.cc.o" "gcc" "src/hwcount/CMakeFiles/lotus_hwcount.dir/sampling_driver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lotus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
