file(REMOVE_RECURSE
  "liblotus_hwcount.a"
)
