file(REMOVE_RECURSE
  "CMakeFiles/lotus_hwcount.dir/collection.cc.o"
  "CMakeFiles/lotus_hwcount.dir/collection.cc.o.d"
  "CMakeFiles/lotus_hwcount.dir/cost_model.cc.o"
  "CMakeFiles/lotus_hwcount.dir/cost_model.cc.o.d"
  "CMakeFiles/lotus_hwcount.dir/counters.cc.o"
  "CMakeFiles/lotus_hwcount.dir/counters.cc.o.d"
  "CMakeFiles/lotus_hwcount.dir/csv_export.cc.o"
  "CMakeFiles/lotus_hwcount.dir/csv_export.cc.o.d"
  "CMakeFiles/lotus_hwcount.dir/kernel_id.cc.o"
  "CMakeFiles/lotus_hwcount.dir/kernel_id.cc.o.d"
  "CMakeFiles/lotus_hwcount.dir/perf_backend.cc.o"
  "CMakeFiles/lotus_hwcount.dir/perf_backend.cc.o.d"
  "CMakeFiles/lotus_hwcount.dir/registry.cc.o"
  "CMakeFiles/lotus_hwcount.dir/registry.cc.o.d"
  "CMakeFiles/lotus_hwcount.dir/sampling_driver.cc.o"
  "CMakeFiles/lotus_hwcount.dir/sampling_driver.cc.o.d"
  "liblotus_hwcount.a"
  "liblotus_hwcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_hwcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
