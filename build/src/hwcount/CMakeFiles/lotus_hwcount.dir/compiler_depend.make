# Empty compiler generated dependencies file for lotus_hwcount.
# This may be replaced when dependencies are built.
