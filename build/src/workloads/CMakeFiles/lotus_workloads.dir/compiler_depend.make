# Empty compiler generated dependencies file for lotus_workloads.
# This may be replaced when dependencies are built.
