file(REMOVE_RECURSE
  "CMakeFiles/lotus_workloads.dir/pipelines.cc.o"
  "CMakeFiles/lotus_workloads.dir/pipelines.cc.o.d"
  "CMakeFiles/lotus_workloads.dir/synthetic.cc.o"
  "CMakeFiles/lotus_workloads.dir/synthetic.cc.o.d"
  "liblotus_workloads.a"
  "liblotus_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
