file(REMOVE_RECURSE
  "liblotus_workloads.a"
)
