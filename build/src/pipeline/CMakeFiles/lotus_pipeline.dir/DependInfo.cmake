
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/collate.cc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/collate.cc.o" "gcc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/collate.cc.o.d"
  "/root/repo/src/pipeline/compose.cc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/compose.cc.o" "gcc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/compose.cc.o.d"
  "/root/repo/src/pipeline/image_folder.cc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/image_folder.cc.o" "gcc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/image_folder.cc.o.d"
  "/root/repo/src/pipeline/iterable_dataset.cc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/iterable_dataset.cc.o" "gcc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/iterable_dataset.cc.o.d"
  "/root/repo/src/pipeline/store.cc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/store.cc.o" "gcc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/store.cc.o.d"
  "/root/repo/src/pipeline/transforms/vision.cc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/transforms/vision.cc.o" "gcc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/transforms/vision.cc.o.d"
  "/root/repo/src/pipeline/transforms/volumetric.cc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/transforms/volumetric.cc.o" "gcc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/transforms/volumetric.cc.o.d"
  "/root/repo/src/pipeline/volume_dataset.cc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/volume_dataset.cc.o" "gcc" "src/pipeline/CMakeFiles/lotus_pipeline.dir/volume_dataset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lotus_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcount/CMakeFiles/lotus_hwcount.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lotus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/lotus_image.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lotus_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
