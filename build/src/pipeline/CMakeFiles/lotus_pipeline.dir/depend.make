# Empty dependencies file for lotus_pipeline.
# This may be replaced when dependencies are built.
