file(REMOVE_RECURSE
  "CMakeFiles/lotus_pipeline.dir/collate.cc.o"
  "CMakeFiles/lotus_pipeline.dir/collate.cc.o.d"
  "CMakeFiles/lotus_pipeline.dir/compose.cc.o"
  "CMakeFiles/lotus_pipeline.dir/compose.cc.o.d"
  "CMakeFiles/lotus_pipeline.dir/image_folder.cc.o"
  "CMakeFiles/lotus_pipeline.dir/image_folder.cc.o.d"
  "CMakeFiles/lotus_pipeline.dir/iterable_dataset.cc.o"
  "CMakeFiles/lotus_pipeline.dir/iterable_dataset.cc.o.d"
  "CMakeFiles/lotus_pipeline.dir/store.cc.o"
  "CMakeFiles/lotus_pipeline.dir/store.cc.o.d"
  "CMakeFiles/lotus_pipeline.dir/transforms/vision.cc.o"
  "CMakeFiles/lotus_pipeline.dir/transforms/vision.cc.o.d"
  "CMakeFiles/lotus_pipeline.dir/transforms/volumetric.cc.o"
  "CMakeFiles/lotus_pipeline.dir/transforms/volumetric.cc.o.d"
  "CMakeFiles/lotus_pipeline.dir/volume_dataset.cc.o"
  "CMakeFiles/lotus_pipeline.dir/volume_dataset.cc.o.d"
  "liblotus_pipeline.a"
  "liblotus_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
