file(REMOVE_RECURSE
  "liblotus_pipeline.a"
)
