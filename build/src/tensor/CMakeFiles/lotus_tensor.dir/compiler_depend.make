# Empty compiler generated dependencies file for lotus_tensor.
# This may be replaced when dependencies are built.
