file(REMOVE_RECURSE
  "liblotus_tensor.a"
)
