file(REMOVE_RECURSE
  "CMakeFiles/lotus_tensor.dir/ops.cc.o"
  "CMakeFiles/lotus_tensor.dir/ops.cc.o.d"
  "CMakeFiles/lotus_tensor.dir/serialize.cc.o"
  "CMakeFiles/lotus_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/lotus_tensor.dir/tensor.cc.o"
  "CMakeFiles/lotus_tensor.dir/tensor.cc.o.d"
  "liblotus_tensor.a"
  "liblotus_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
