
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/lotusmap/evaluate.cc" "src/core/CMakeFiles/lotus_core.dir/lotusmap/evaluate.cc.o" "gcc" "src/core/CMakeFiles/lotus_core.dir/lotusmap/evaluate.cc.o.d"
  "/root/repo/src/core/lotusmap/isolation.cc" "src/core/CMakeFiles/lotus_core.dir/lotusmap/isolation.cc.o" "gcc" "src/core/CMakeFiles/lotus_core.dir/lotusmap/isolation.cc.o.d"
  "/root/repo/src/core/lotusmap/mapper.cc" "src/core/CMakeFiles/lotus_core.dir/lotusmap/mapper.cc.o" "gcc" "src/core/CMakeFiles/lotus_core.dir/lotusmap/mapper.cc.o.d"
  "/root/repo/src/core/lotusmap/splitter.cc" "src/core/CMakeFiles/lotus_core.dir/lotusmap/splitter.cc.o" "gcc" "src/core/CMakeFiles/lotus_core.dir/lotusmap/splitter.cc.o.d"
  "/root/repo/src/core/lotustrace/analysis.cc" "src/core/CMakeFiles/lotus_core.dir/lotustrace/analysis.cc.o" "gcc" "src/core/CMakeFiles/lotus_core.dir/lotustrace/analysis.cc.o.d"
  "/root/repo/src/core/lotustrace/report.cc" "src/core/CMakeFiles/lotus_core.dir/lotustrace/report.cc.o" "gcc" "src/core/CMakeFiles/lotus_core.dir/lotustrace/report.cc.o.d"
  "/root/repo/src/core/lotustrace/visualize.cc" "src/core/CMakeFiles/lotus_core.dir/lotustrace/visualize.cc.o" "gcc" "src/core/CMakeFiles/lotus_core.dir/lotustrace/visualize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/lotus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcount/CMakeFiles/lotus_hwcount.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lotus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
