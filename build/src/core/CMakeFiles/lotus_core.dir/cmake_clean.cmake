file(REMOVE_RECURSE
  "CMakeFiles/lotus_core.dir/lotusmap/evaluate.cc.o"
  "CMakeFiles/lotus_core.dir/lotusmap/evaluate.cc.o.d"
  "CMakeFiles/lotus_core.dir/lotusmap/isolation.cc.o"
  "CMakeFiles/lotus_core.dir/lotusmap/isolation.cc.o.d"
  "CMakeFiles/lotus_core.dir/lotusmap/mapper.cc.o"
  "CMakeFiles/lotus_core.dir/lotusmap/mapper.cc.o.d"
  "CMakeFiles/lotus_core.dir/lotusmap/splitter.cc.o"
  "CMakeFiles/lotus_core.dir/lotusmap/splitter.cc.o.d"
  "CMakeFiles/lotus_core.dir/lotustrace/analysis.cc.o"
  "CMakeFiles/lotus_core.dir/lotustrace/analysis.cc.o.d"
  "CMakeFiles/lotus_core.dir/lotustrace/report.cc.o"
  "CMakeFiles/lotus_core.dir/lotustrace/report.cc.o.d"
  "CMakeFiles/lotus_core.dir/lotustrace/visualize.cc.o"
  "CMakeFiles/lotus_core.dir/lotustrace/visualize.cc.o.d"
  "liblotus_core.a"
  "liblotus_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotus_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
