# Empty compiler generated dependencies file for characterize_pipeline.
# This may be replaced when dependencies are built.
