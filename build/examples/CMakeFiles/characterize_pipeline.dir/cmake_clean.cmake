file(REMOVE_RECURSE
  "CMakeFiles/characterize_pipeline.dir/characterize_pipeline.cpp.o"
  "CMakeFiles/characterize_pipeline.dir/characterize_pipeline.cpp.o.d"
  "characterize_pipeline"
  "characterize_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
