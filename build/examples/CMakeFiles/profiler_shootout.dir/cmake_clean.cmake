file(REMOVE_RECURSE
  "CMakeFiles/profiler_shootout.dir/profiler_shootout.cpp.o"
  "CMakeFiles/profiler_shootout.dir/profiler_shootout.cpp.o.d"
  "profiler_shootout"
  "profiler_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
