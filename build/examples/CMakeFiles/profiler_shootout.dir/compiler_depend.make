# Empty compiler generated dependencies file for profiler_shootout.
# This may be replaced when dependencies are built.
