file(REMOVE_RECURSE
  "CMakeFiles/scale_out_planning.dir/scale_out_planning.cpp.o"
  "CMakeFiles/scale_out_planning.dir/scale_out_planning.cpp.o.d"
  "scale_out_planning"
  "scale_out_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_out_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
