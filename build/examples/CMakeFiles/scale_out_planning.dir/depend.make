# Empty dependencies file for scale_out_planning.
# This may be replaced when dependencies are built.
