file(REMOVE_RECURSE
  "CMakeFiles/hardware_attribution.dir/hardware_attribution.cpp.o"
  "CMakeFiles/hardware_attribution.dir/hardware_attribution.cpp.o.d"
  "hardware_attribution"
  "hardware_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
