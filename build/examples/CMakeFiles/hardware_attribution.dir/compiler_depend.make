# Empty compiler generated dependencies file for hardware_attribution.
# This may be replaced when dependencies are built.
