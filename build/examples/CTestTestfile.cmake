# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_characterize_ic "/root/repo/build/examples/characterize_pipeline" "ic")
set_tests_properties(example_characterize_ic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_characterize_is "/root/repo/build/examples/characterize_pipeline" "is")
set_tests_properties(example_characterize_is PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hardware_attribution "/root/repo/build/examples/hardware_attribution")
set_tests_properties(example_hardware_attribution PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;31;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_profiler_shootout "/root/repo/build/examples/profiler_shootout")
set_tests_properties(example_profiler_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scale_out_planning "/root/repo/build/examples/scale_out_planning")
set_tests_properties(example_scale_out_planning PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
