file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_functionality.dir/bench_table4_functionality.cc.o"
  "CMakeFiles/bench_table4_functionality.dir/bench_table4_functionality.cc.o.d"
  "bench_table4_functionality"
  "bench_table4_functionality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_functionality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
