file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ooo.dir/bench_fig3_ooo.cc.o"
  "CMakeFiles/bench_fig3_ooo.dir/bench_fig3_ooo.cc.o.d"
  "bench_fig3_ooo"
  "bench_fig3_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
