# Empty compiler generated dependencies file for bench_table2_op_times.
# This may be replaced when dependencies are built.
