file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_op_times.dir/bench_table2_op_times.cc.o"
  "CMakeFiles/bench_table2_op_times.dir/bench_table2_op_times.cc.o.d"
  "bench_table2_op_times"
  "bench_table2_op_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_op_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
