file(REMOVE_RECURSE
  "CMakeFiles/bench_capture_probability.dir/bench_capture_probability.cc.o"
  "CMakeFiles/bench_capture_probability.dir/bench_capture_probability.cc.o.d"
  "bench_capture_probability"
  "bench_capture_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_capture_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
