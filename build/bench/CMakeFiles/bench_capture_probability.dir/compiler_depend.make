# Empty compiler generated dependencies file for bench_capture_probability.
# This may be replaced when dependencies are built.
