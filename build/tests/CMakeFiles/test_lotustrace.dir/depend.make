# Empty dependencies file for test_lotustrace.
# This may be replaced when dependencies are built.
