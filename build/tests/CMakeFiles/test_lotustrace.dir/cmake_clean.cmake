file(REMOVE_RECURSE
  "CMakeFiles/test_lotustrace.dir/test_lotustrace.cc.o"
  "CMakeFiles/test_lotustrace.dir/test_lotustrace.cc.o.d"
  "test_lotustrace"
  "test_lotustrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lotustrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
