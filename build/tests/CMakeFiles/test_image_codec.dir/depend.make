# Empty dependencies file for test_image_codec.
# This may be replaced when dependencies are built.
