file(REMOVE_RECURSE
  "CMakeFiles/test_image_codec.dir/test_image_codec.cc.o"
  "CMakeFiles/test_image_codec.dir/test_image_codec.cc.o.d"
  "test_image_codec"
  "test_image_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
