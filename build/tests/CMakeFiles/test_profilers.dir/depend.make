# Empty dependencies file for test_profilers.
# This may be replaced when dependencies are built.
