# Empty dependencies file for test_lotusmap.
# This may be replaced when dependencies are built.
