file(REMOVE_RECURSE
  "CMakeFiles/test_lotusmap.dir/test_lotusmap.cc.o"
  "CMakeFiles/test_lotusmap.dir/test_lotusmap.cc.o.d"
  "test_lotusmap"
  "test_lotusmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lotusmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
