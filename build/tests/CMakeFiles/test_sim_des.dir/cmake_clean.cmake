file(REMOVE_RECURSE
  "CMakeFiles/test_sim_des.dir/test_sim_des.cc.o"
  "CMakeFiles/test_sim_des.dir/test_sim_des.cc.o.d"
  "test_sim_des"
  "test_sim_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
