
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sim_des.cc" "tests/CMakeFiles/test_sim_des.dir/test_sim_des.cc.o" "gcc" "tests/CMakeFiles/test_sim_des.dir/test_sim_des.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/lotus_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/profilers/CMakeFiles/lotus_profilers.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lotus_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lotus_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lotus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/lotus_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/lotus_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lotus_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/lotus_image.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lotus_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/hwcount/CMakeFiles/lotus_hwcount.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotus_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
