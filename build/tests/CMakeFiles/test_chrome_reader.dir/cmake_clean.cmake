file(REMOVE_RECURSE
  "CMakeFiles/test_chrome_reader.dir/test_chrome_reader.cc.o"
  "CMakeFiles/test_chrome_reader.dir/test_chrome_reader.cc.o.d"
  "test_chrome_reader"
  "test_chrome_reader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chrome_reader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
