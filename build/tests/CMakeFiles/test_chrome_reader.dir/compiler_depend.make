# Empty compiler generated dependencies file for test_chrome_reader.
# This may be replaced when dependencies are built.
