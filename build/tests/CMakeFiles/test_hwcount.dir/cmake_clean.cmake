file(REMOVE_RECURSE
  "CMakeFiles/test_hwcount.dir/test_hwcount.cc.o"
  "CMakeFiles/test_hwcount.dir/test_hwcount.cc.o.d"
  "test_hwcount"
  "test_hwcount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hwcount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
