# Empty dependencies file for test_hwcount.
# This may be replaced when dependencies are built.
