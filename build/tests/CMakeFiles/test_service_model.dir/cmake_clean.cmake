file(REMOVE_RECURSE
  "CMakeFiles/test_service_model.dir/test_service_model.cc.o"
  "CMakeFiles/test_service_model.dir/test_service_model.cc.o.d"
  "test_service_model"
  "test_service_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
