# Empty dependencies file for test_service_model.
# This may be replaced when dependencies are built.
