# Empty dependencies file for test_image_ops.
# This may be replaced when dependencies are built.
