file(REMOVE_RECURSE
  "CMakeFiles/test_loader_sim.dir/test_loader_sim.cc.o"
  "CMakeFiles/test_loader_sim.dir/test_loader_sim.cc.o.d"
  "test_loader_sim"
  "test_loader_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loader_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
