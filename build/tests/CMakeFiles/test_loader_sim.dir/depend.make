# Empty dependencies file for test_loader_sim.
# This may be replaced when dependencies are built.
